package faultpoint

import (
	"strings"
	"testing"
	"time"
)

func TestDisarmedInjectorNeverFires(t *testing.T) {
	in := New(1)
	for i := 0; i < 1000; i++ {
		if act, _ := in.Decide(Steal); act != None {
			t.Fatalf("disarmed point fired %v", act)
		}
	}
	if in.Fired(Steal) != 0 || in.Evaluated(Steal) != 1000 {
		t.Fatalf("fired %d evaluated %d, want 0/1000", in.Fired(Steal), in.Evaluated(Steal))
	}
}

func TestRateOneAlwaysFires(t *testing.T) {
	in := New(2).Set(ResumeInject, Rule{Action: Drop, Rate: 1})
	for i := 0; i < 100; i++ {
		if act, _ := in.Decide(ResumeInject); act != Drop {
			t.Fatalf("rate-1 point returned %v", act)
		}
	}
}

func TestRateRoughlyHonored(t *testing.T) {
	in := New(3).Set(Steal, Rule{Action: Fail, Rate: 0.1})
	const n = 20000
	for i := 0; i < n; i++ {
		in.Decide(Steal)
	}
	got := float64(in.Fired(Steal)) / n
	if got < 0.07 || got > 0.13 {
		t.Fatalf("fire rate %.3f, want ~0.10", got)
	}
}

func TestSeededReplay(t *testing.T) {
	draw := func(seed uint64) []Action {
		in := New(seed).Set(ChanWakeup, Rule{Action: Dup, Rate: 0.5})
		out := make([]Action, 200)
		for i := range out {
			out[i], _ = in.Decide(ChanWakeup)
		}
		return out
	}
	a, b := draw(7), draw(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at draw %d: %v vs %v", i, a[i], b[i])
		}
	}
	c := draw(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical decision streams")
	}
}

func TestInjectPanics(t *testing.T) {
	in := New(4).Set(TaskBody, Rule{Action: Panic, Rate: 1})
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Inject with Panic rule did not panic")
		}
		if !strings.Contains(r.(string), "task-body") {
			t.Fatalf("panic value %q does not name the point", r)
		}
	}()
	in.Inject(TaskBody)
}

func TestInjectDelaySleeps(t *testing.T) {
	in := New(5).Set(Suspend, Rule{Action: Delay, Rate: 1, Delay: 5 * time.Millisecond})
	start := time.Now()
	in.Inject(Suspend)
	if time.Since(start) < 4*time.Millisecond {
		t.Fatal("Delay rule did not sleep")
	}
}

func TestSummaryAndStrings(t *testing.T) {
	in := New(6)
	if got := in.Summary(); got != "no fault points evaluated" {
		t.Fatalf("empty summary = %q", got)
	}
	in.Set(Steal, Rule{Action: Fail, Rate: 1})
	in.Decide(Steal)
	if got := in.Summary(); !strings.Contains(got, "steal 1/1") {
		t.Fatalf("summary = %q, want steal 1/1", got)
	}
	for p := Point(0); p < numPoints; p++ {
		if strings.HasPrefix(p.String(), "Point(") {
			t.Fatalf("point %d has no name", int(p))
		}
	}
	for _, a := range []Action{None, Fail, Drop, Delay, Dup, Panic} {
		if strings.HasPrefix(a.String(), "Action(") {
			t.Fatalf("action %d has no name", int(a))
		}
	}
}

// TestDecideDisarmedIsLockFree is the regression test for the steal-path
// serialization the noblock may-block summary flagged: Decide on a
// disarmed point must be a pure atomic read, never touching in.mu. With
// the mutex deliberately held, a lock-taking fast path would deadlock
// here instead of returning.
func TestDecideDisarmedIsLockFree(t *testing.T) {
	in := New(7).Set(Suspend, Rule{Action: Fail, Rate: 1}) // arm a *different* point
	in.mu.Lock()
	defer in.mu.Unlock()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			if act, _ := in.Decide(Steal); act != None {
				t.Errorf("disarmed point fired %v", act)
			}
		}
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Decide on a disarmed point blocked on the injector mutex")
	}
}
