// Package faultpoint injects scheduler faults for chaos testing the
// latency-hiding runtime.
//
// The LHWS algorithm (paper Figure 3) rests on a chain of liveness
// invariants: every suspended vertex is eventually re-enabled, every
// re-enabled vertex is injected onto its owning deque, and every
// non-empty deque is eventually found by a worker. The analysis assumes
// those hand-offs are perfect; a production runtime has to survive them
// being late, lost, or doubled. This package makes such failures
// reproducible: the runtime consults an Injector at named fault points
// (steal attempts, suspension entry, resume injection, channel wakeups,
// task bodies) and the injector — driven by a seeded splittable RNG so
// chaos runs replay — decides per occurrence whether to misbehave.
//
// The hooks are pay-for-play: a runtime configured without an Injector
// performs a single nil check per fault point and nothing else.
// Cancellation and watchdog recovery paths never consult the injector,
// so a chaos run can always be unwound cleanly.
package faultpoint

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"lhws/internal/rng"
)

// Point names a scheduler location where faults can be injected.
type Point int

const (
	// Steal is a steal attempt; Fail forces the attempt to miss as if
	// the victim's deque were empty or the CAS lost a race.
	Steal Point = iota
	// Suspend is the task-side entry to a suspending operation
	// (Latency, channel send/receive, Await); Delay jitters the window
	// between the suspension decision and the yield, Panic kills the
	// task at the suspension site.
	Suspend
	// ResumeInject is the resume wakeup that returns a suspended task
	// to its owning deque (timer fire, future completion — Figure 3
	// lines 1-5); Drop loses the wakeup, Delay defers it, Dup delivers
	// it twice.
	ResumeInject
	// ChanWakeup is the channel-handoff wakeup (sender resuming a
	// suspended receiver, receiver admitting a suspended sender); same
	// actions as ResumeInject.
	ChanWakeup
	// TaskBody is the entry of a task's user function; Panic makes the
	// task panic before running any user code.
	TaskBody
	// PollComplete is an external I/O completion being delivered to a
	// suspended task (poller readiness, AwaitExternal completion); same
	// actions as ResumeInject. Exercises the path where wakeups originate
	// outside the scheduler entirely.
	PollComplete

	numPoints
)

func (p Point) String() string {
	switch p {
	case Steal:
		return "steal"
	case Suspend:
		return "suspend"
	case ResumeInject:
		return "resume-inject"
	case ChanWakeup:
		return "chan-wakeup"
	case TaskBody:
		return "task-body"
	case PollComplete:
		return "poll-complete"
	default:
		return fmt.Sprintf("Point(%d)", int(p))
	}
}

// Action is what happens when a fault point fires.
type Action int

const (
	// None leaves the operation untouched.
	None Action = iota
	// Fail reports failure (steal attempts miss).
	Fail
	// Drop swallows a wakeup entirely — the paper's "lost wakeup".
	Drop
	// Delay defers the operation by Rule.Delay.
	Delay
	// Dup delivers a wakeup twice, Rule.Delay apart.
	Dup
	// Panic panics at the fault point (task-side points only).
	Panic
)

func (a Action) String() string {
	switch a {
	case None:
		return "none"
	case Fail:
		return "fail"
	case Drop:
		return "drop"
	case Delay:
		return "delay"
	case Dup:
		return "dup"
	case Panic:
		return "panic"
	default:
		return fmt.Sprintf("Action(%d)", int(a))
	}
}

// Rule configures one fault point: with probability Rate, perform
// Action (using Delay where the action needs a duration).
type Rule struct {
	Action Action
	Rate   float64
	Delay  time.Duration
}

// Injector decides, per fault-point occurrence, whether to inject a
// fault. It is safe for concurrent use by workers, timer goroutines,
// and tasks. The zero value is invalid; construct with New.
type Injector struct {
	mu    sync.Mutex
	rnd   *rng.RNG
	rules [numPoints]Rule
	// thresh holds each point's Rate as a uint64 cutoff (0 = disabled).
	// It is atomic so Decide's disarmed fast path — the steady state on
	// worker hot paths like the steal loop — never touches mu: a plain
	// field here would serialize every worker through one global mutex
	// per steal attempt (found by the noblock may-block summary).
	thresh [numPoints]atomic.Uint64
	evals  [numPoints]atomic.Int64
	fires  [numPoints]atomic.Int64
}

// New returns an Injector with no rules armed, drawing from a stream
// seeded with seed so chaos runs are replayable.
func New(seed uint64) *Injector {
	return &Injector{rnd: rng.New(seed)}
}

// Set arms rule r at point p and returns the injector for chaining.
// A Rate <= 0 disarms the point; a Rate >= 1 fires on every occurrence.
func (in *Injector) Set(p Point, r Rule) *Injector {
	if p < 0 || p >= numPoints {
		panic(fmt.Sprintf("faultpoint: invalid point %d", int(p)))
	}
	in.mu.Lock()
	in.rules[p] = r
	switch {
	case r.Rate <= 0 || r.Action == None:
		in.thresh[p].Store(0)
	case r.Rate >= 1:
		in.thresh[p].Store(math.MaxUint64)
	default:
		in.thresh[p].Store(uint64(r.Rate * float64(math.MaxUint64)))
	}
	in.mu.Unlock()
	return in
}

// Decide evaluates point p once: it returns the armed action (and its
// delay) if the seeded coin fires, else None. A disarmed point — the
// steady state on worker hot paths — is a single atomic load; only an
// armed point takes the leaf mutex serializing the replayable RNG
// stream.
func (in *Injector) Decide(p Point) (Action, time.Duration) {
	in.evals[p].Add(1)
	if in.thresh[p].Load() == 0 {
		return None, 0
	}
	in.mu.Lock() //lhws:allowblock bounded leaf critical section around the RNG draw on armed (chaos-run) points only; no suspension or I/O inside
	th := in.thresh[p].Load()
	if th == 0 {
		in.mu.Unlock()
		return None, 0
	}
	draw := in.rnd.Uint64()
	r := in.rules[p]
	in.mu.Unlock()
	if th != math.MaxUint64 && draw > th {
		return None, 0
	}
	in.fires[p].Add(1)
	return r.Action, r.Delay
}

// Inject runs task-side point p in place: Delay sleeps the task, Panic
// panics with an identifiable value. Worker-loop hot paths must not
// call Inject — it blocks by design; they use Decide and act
// non-blockingly on the result.
func (in *Injector) Inject(p Point) {
	switch act, d := in.Decide(p); act {
	case Delay:
		time.Sleep(d)
	case Panic:
		panic(fmt.Sprintf("faultpoint: injected panic at %s", p))
	}
}

// Evaluated returns how many times point p was consulted.
func (in *Injector) Evaluated(p Point) int64 { return in.evals[p].Load() }

// Fired returns how many times point p injected a fault.
func (in *Injector) Fired(p Point) int64 { return in.fires[p].Load() }

// Summary formats the per-point evaluation and fire counts.
func (in *Injector) Summary() string {
	s := ""
	for p := Point(0); p < numPoints; p++ {
		if ev := in.evals[p].Load(); ev > 0 {
			if s != "" {
				s += ", "
			}
			s += fmt.Sprintf("%s %d/%d", p, in.fires[p].Load(), ev)
		}
	}
	if s == "" {
		return "no fault points evaluated"
	}
	return s
}
