// Package stats provides the small numeric and formatting helpers used by
// the experiment harness: summary statistics over samples and fixed-width
// text tables matching the rows the paper's evaluation reports.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Summary holds the summary statistics of a sample.
type Summary struct {
	N      int
	Mean   float64
	Stddev float64
	Min    float64
	Max    float64
}

// Summarize computes summary statistics. An empty sample yields a zero
// Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	if len(xs) > 1 {
		var ss float64
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.Stddev = math.Sqrt(ss / float64(len(xs)-1))
	}
	return s
}

// String renders "mean ± stddev [min, max] (n)".
func (s Summary) String() string {
	return fmt.Sprintf("%.2f ± %.2f [%.2f, %.2f] (n=%d)", s.Mean, s.Stddev, s.Min, s.Max, s.N)
}

// Percentile returns the q-th percentile (0 ≤ q ≤ 100) of the sample using
// linear interpolation between closest ranks. It copies and sorts the
// input. An empty sample returns 0.
func Percentile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if q <= 0 {
		return sorted[0]
	}
	if q >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := q / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Table accumulates rows and renders them with aligned columns, suitable
// for terminal output and for inclusion in EXPERIMENTS.md.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends a row; cells beyond the header width are dropped, and
// missing cells render empty.
func (t *Table) AddRow(cells ...string) {
	if len(cells) > len(t.header) {
		cells = cells[:len(t.header)]
	}
	t.rows = append(t.rows, cells)
}

// AddRowf appends a row of formatted cells; each argument is rendered with
// %v except float64, which uses two decimals.
func (t *Table) AddRowf(cells ...interface{}) {
	out := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			out[i] = fmt.Sprintf("%.2f", v)
		default:
			out[i] = fmt.Sprintf("%v", v)
		}
	}
	t.AddRow(out...)
}

// String renders the table with a separator line under the header.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	writeRow := func(cells []string) {
		for i, w := range widths {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", w, c)
		}
		sb.WriteByte('\n')
	}
	writeRow(t.header)
	total := 0
	for _, w := range widths {
		total += w
	}
	sb.WriteString(strings.Repeat("-", total+2*(len(widths)-1)))
	sb.WriteByte('\n')
	for _, row := range t.rows {
		writeRow(row)
	}
	return sb.String()
}

// Markdown renders the table as GitHub-flavored Markdown.
func (t *Table) Markdown() string {
	var sb strings.Builder
	sb.WriteString("| " + strings.Join(t.header, " | ") + " |\n")
	sb.WriteString("|" + strings.Repeat("---|", len(t.header)) + "\n")
	for _, row := range t.rows {
		cells := make([]string, len(t.header))
		copy(cells, row)
		sb.WriteString("| " + strings.Join(cells, " | ") + " |\n")
	}
	return sb.String()
}
