package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || s.Mean != 0 {
		t.Errorf("empty summary = %+v", s)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s := Summarize([]float64{5})
	if s.N != 1 || s.Mean != 5 || s.Stddev != 0 || s.Min != 5 || s.Max != 5 {
		t.Errorf("single summary = %+v", s)
	}
}

func TestSummarizeKnown(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.Mean != 5 {
		t.Errorf("mean = %v, want 5", s.Mean)
	}
	// Sample stddev of that classic dataset is ~2.138.
	if math.Abs(s.Stddev-2.1381) > 0.001 {
		t.Errorf("stddev = %v, want ~2.138", s.Stddev)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Errorf("min/max = %v/%v", s.Min, s.Max)
	}
}

func TestSummaryInvariants(t *testing.T) {
	fn := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e9 {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		s := Summarize(xs)
		return s.Min <= s.Mean+1e-9 && s.Mean <= s.Max+1e-9 && s.Stddev >= 0
	}
	if err := quick.Check(fn, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSummaryString(t *testing.T) {
	s := Summarize([]float64{1, 2, 3})
	str := s.String()
	if !strings.Contains(str, "n=3") || !strings.Contains(str, "2.00") {
		t.Errorf("unexpected summary string %q", str)
	}
}

func TestTableAlignment(t *testing.T) {
	tb := NewTable("P", "rounds", "speedup")
	tb.AddRowf(1, 1000, 1.0)
	tb.AddRowf(16, 62, 16.13)
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("table has %d lines, want 4:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "P ") {
		t.Errorf("header line %q", lines[0])
	}
	if !strings.Contains(lines[3], "16.13") {
		t.Errorf("row line %q", lines[3])
	}
	if !strings.HasPrefix(lines[1], "---") {
		t.Errorf("separator line %q", lines[1])
	}
}

func TestTableExtraCellsDropped(t *testing.T) {
	tb := NewTable("a", "b")
	tb.AddRow("1", "2", "3")
	if strings.Contains(tb.String(), "3") {
		t.Error("extra cell not dropped")
	}
}

func TestTableMissingCells(t *testing.T) {
	tb := NewTable("a", "b")
	tb.AddRow("1")
	out := tb.String()
	if !strings.Contains(out, "1") {
		t.Errorf("missing row: %s", out)
	}
}

func TestMarkdown(t *testing.T) {
	tb := NewTable("x", "y")
	tb.AddRowf(1, 2.5)
	md := tb.Markdown()
	want := "| x | y |\n|---|---|\n| 1 | 2.50 |\n"
	if md != want {
		t.Errorf("markdown = %q, want %q", md, want)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if got := Percentile(xs, 0); got != 1 {
		t.Errorf("p0 = %v", got)
	}
	if got := Percentile(xs, 100); got != 10 {
		t.Errorf("p100 = %v", got)
	}
	if got := Percentile(xs, 50); got != 5.5 {
		t.Errorf("p50 = %v, want 5.5", got)
	}
	if got := Percentile(nil, 50); got != 0 {
		t.Errorf("empty p50 = %v", got)
	}
	if got := Percentile([]float64{7}, 95); got != 7 {
		t.Errorf("single p95 = %v", got)
	}
}

func TestPercentileUnsortedInput(t *testing.T) {
	xs := []float64{9, 1, 5, 3, 7}
	if got := Percentile(xs, 50); got != 5 {
		t.Errorf("p50 = %v, want 5", got)
	}
	// Input must not be mutated.
	if xs[0] != 9 {
		t.Error("Percentile sorted the caller's slice")
	}
}

func TestPercentileMonotone(t *testing.T) {
	if err := quick.Check(func(raw []float64, aRaw, bRaw uint8) bool {
		xs := raw[:0]
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		a, b := float64(aRaw%101), float64(bRaw%101)
		if a > b {
			a, b = b, a
		}
		return Percentile(xs, a) <= Percentile(xs, b)
	}, nil); err != nil {
		t.Fatal(err)
	}
}
