package trace

import (
	"strings"
	"sync"
	"testing"
)

func TestStealLogTallies(t *testing.T) {
	l := NewStealLog(2)
	l.Record(0, 1, 4, true)
	l.Record(0, 1, 2, false)
	l.Record(1, 0, 1, true)
	l.Record(7, 0, 3, true) // out-of-range thief lands in spills, still totalled

	if got := l.Worker(0); got.Steals != 2 || got.Items != 6 || got.Local != 1 || got.Remote != 1 {
		t.Fatalf("worker 0 tally = %+v", got)
	}
	if got := l.Worker(1); got.Steals != 1 || got.Items != 1 {
		t.Fatalf("worker 1 tally = %+v", got)
	}
	tot := l.Total()
	if tot.Steals != 4 || tot.Items != 10 || tot.Local != 3 || tot.Remote != 1 {
		t.Fatalf("total tally = %+v", tot)
	}
	if mb := tot.MeanBatch(); mb != 2.5 {
		t.Fatalf("MeanBatch = %v, want 2.5", mb)
	}
	if lr := tot.LocalityRatio(); lr != 0.75 {
		t.Fatalf("LocalityRatio = %v, want 0.75", lr)
	}
	if z := (StealTally{}); z.MeanBatch() != 0 || z.LocalityRatio() != 0 {
		t.Fatal("zero tally ratios must be 0, not NaN")
	}
	if s := l.Summary(); !strings.Contains(s, "total") || !strings.Contains(s, "items/st") {
		t.Fatalf("Summary missing table parts:\n%s", s)
	}
}

func TestStealLogConcurrent(t *testing.T) {
	l := NewStealLog(4)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				l.Record(g, (g+1)%4, 2, i%2 == 0)
			}
		}(g)
	}
	wg.Wait()
	tot := l.Total()
	if tot.Steals != 4000 || tot.Items != 8000 || tot.Local != 2000 {
		t.Fatalf("total tally = %+v", tot)
	}
}
