// Package trace collects and renders per-round execution traces of the
// simulated schedulers (package sched).
//
// A Timeline records one sched.Action per worker per round. From it the
// package derives the Lemma-1 token buckets (work / switch / steal),
// worker-utilization series, ASCII Gantt charts for small executions, and
// CSV export for plotting.
package trace

import (
	"fmt"
	"strings"

	"lhws/internal/sched"
)

// Timeline is a sched.Tracer that stores every action, indexed by round
// and worker. Memory grows with rounds×workers; use it on executions of
// bounded length (the Buckets collector is O(1) if only totals are
// needed).
type Timeline struct {
	workers int
	rows    [][]sched.Action // rows[round][worker]
}

// NewTimeline returns a Timeline for the given worker count.
func NewTimeline(workers int) *Timeline {
	return &Timeline{workers: workers}
}

// Record implements sched.Tracer.
func (t *Timeline) Record(round int64, worker int, a sched.Action) {
	for int64(len(t.rows)) <= round {
		t.rows = append(t.rows, make([]sched.Action, t.workers))
	}
	t.rows[round][worker] = a
}

// Rounds returns the number of recorded rounds.
func (t *Timeline) Rounds() int { return len(t.rows) }

// Workers returns the worker count.
func (t *Timeline) Workers() int { return t.workers }

// At returns the action of a worker in a round. Unrecorded cells are
// ActionIdle (the zero value).
func (t *Timeline) At(round int64, worker int) sched.Action {
	if round < 0 || round >= int64(len(t.rows)) {
		return sched.ActionIdle
	}
	return t.rows[round][worker]
}

// Buckets are the Lemma-1 token buckets over a full execution.
type Buckets struct {
	Work    int64 // dag vertices + pfor vertices
	Switch  int64
	Steal   int64 // attempts, successful or not
	Blocked int64
	Idle    int64
}

// Buckets tallies the timeline into Lemma-1 buckets.
func (t *Timeline) Buckets() Buckets {
	var b Buckets
	for _, row := range t.rows {
		for _, a := range row {
			switch a {
			case sched.ActionWork, sched.ActionPfor:
				b.Work++
			case sched.ActionSwitch:
				b.Switch++
			case sched.ActionStealHit, sched.ActionStealMiss:
				b.Steal++
			case sched.ActionBlocked:
				b.Blocked++
			default:
				b.Idle++
			}
		}
	}
	return b
}

// Utilization returns, per round, the fraction of workers doing work
// (executing dag or pfor vertices).
func (t *Timeline) Utilization() []float64 {
	out := make([]float64, len(t.rows))
	for i, row := range t.rows {
		busy := 0
		for _, a := range row {
			if a == sched.ActionWork || a == sched.ActionPfor {
				busy++
			}
		}
		out[i] = float64(busy) / float64(t.workers)
	}
	return out
}

// MeanUtilization returns the average worker utilization over the run.
func (t *Timeline) MeanUtilization() float64 {
	u := t.Utilization()
	if len(u) == 0 {
		return 0
	}
	var sum float64
	for _, v := range u {
		sum += v
	}
	return sum / float64(len(u))
}

// Gantt renders an ASCII chart, one row per worker, one column per round:
// W=work, F=pfor, C=switch, S=steal hit, s=steal miss, B=blocked, .=idle.
// maxCols truncates wide timelines (0 means no limit).
func (t *Timeline) Gantt(maxCols int) string {
	cols := len(t.rows)
	truncated := false
	if maxCols > 0 && cols > maxCols {
		cols = maxCols
		truncated = true
	}
	var sb strings.Builder
	for w := 0; w < t.workers; w++ {
		fmt.Fprintf(&sb, "w%-3d ", w)
		for r := 0; r < cols; r++ {
			sb.WriteString(t.rows[r][w].String())
		}
		if truncated {
			sb.WriteString("…")
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// CSV renders the timeline as "round,worker,action" lines with a header,
// for external plotting.
func (t *Timeline) CSV() string {
	var sb strings.Builder
	sb.WriteString("round,worker,action\n")
	for r, row := range t.rows {
		for w, a := range row {
			fmt.Fprintf(&sb, "%d,%d,%s\n", r, w, actionName(a))
		}
	}
	return sb.String()
}

func actionName(a sched.Action) string {
	switch a {
	case sched.ActionWork:
		return "work"
	case sched.ActionPfor:
		return "pfor"
	case sched.ActionSwitch:
		return "switch"
	case sched.ActionStealHit:
		return "steal"
	case sched.ActionStealMiss:
		return "steal-fail"
	case sched.ActionBlocked:
		return "blocked"
	default:
		return "idle"
	}
}

// WorkerBuckets tallies buckets per worker, exposing load imbalance: a
// latency-hiding scheduler should spread work roughly evenly once steals
// distribute the dag.
func (t *Timeline) WorkerBuckets() []Buckets {
	out := make([]Buckets, t.workers)
	for _, row := range t.rows {
		for w, a := range row {
			b := &out[w]
			switch a {
			case sched.ActionWork, sched.ActionPfor:
				b.Work++
			case sched.ActionSwitch:
				b.Switch++
			case sched.ActionStealHit, sched.ActionStealMiss:
				b.Steal++
			case sched.ActionBlocked:
				b.Blocked++
			default:
				b.Idle++
			}
		}
	}
	return out
}

// Summary renders a per-worker bucket table plus totals.
func (t *Timeline) Summary() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-8s %10s %10s %10s %10s %10s\n", "worker", "work", "switch", "steal", "blocked", "idle")
	var tot Buckets
	for w, b := range t.WorkerBuckets() {
		fmt.Fprintf(&sb, "w%-7d %10d %10d %10d %10d %10d\n", w, b.Work, b.Switch, b.Steal, b.Blocked, b.Idle)
		tot.Work += b.Work
		tot.Switch += b.Switch
		tot.Steal += b.Steal
		tot.Blocked += b.Blocked
		tot.Idle += b.Idle
	}
	fmt.Fprintf(&sb, "%-8s %10d %10d %10d %10d %10d\n", "total", tot.Work, tot.Switch, tot.Steal, tot.Blocked, tot.Idle)
	return sb.String()
}

// Counter is a sched.Tracer that keeps only bucket totals, suitable for
// arbitrarily long executions.
type Counter struct {
	B Buckets
}

// Record implements sched.Tracer.
func (c *Counter) Record(round int64, worker int, a sched.Action) {
	switch a {
	case sched.ActionWork, sched.ActionPfor:
		c.B.Work++
	case sched.ActionSwitch:
		c.B.Switch++
	case sched.ActionStealHit, sched.ActionStealMiss:
		c.B.Steal++
	case sched.ActionBlocked:
		c.B.Blocked++
	default:
		c.B.Idle++
	}
}
