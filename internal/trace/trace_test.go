package trace

import (
	"strings"
	"testing"

	"lhws/internal/sched"
	"lhws/internal/workload"
)

func runTraced(t *testing.T, p int) (*Timeline, *sched.Result) {
	t.Helper()
	g := workload.MapReduce(workload.MapReduceConfig{N: 16, Delta: 13, FibWork: 3}).G
	tl := NewTimeline(p)
	res, err := sched.RunLHWS(g, sched.Options{Workers: p, Seed: 3, Tracer: tl})
	if err != nil {
		t.Fatal(err)
	}
	return tl, res
}

func TestTimelineMatchesStats(t *testing.T) {
	tl, res := runTraced(t, 4)
	b := tl.Buckets()
	if b.Work != res.Stats.UserWork+res.Stats.PforWork {
		t.Errorf("work bucket %d != UserWork+PforWork %d", b.Work, res.Stats.UserWork+res.Stats.PforWork)
	}
	if b.Switch != res.Stats.Switches {
		t.Errorf("switch bucket %d != Switches %d", b.Switch, res.Stats.Switches)
	}
	if b.Steal != res.Stats.StealAttempts {
		t.Errorf("steal bucket %d != StealAttempts %d", b.Steal, res.Stats.StealAttempts)
	}
}

// TestLemma1TokenIdentity: in LHWS every worker acts every round except
// rounds where it had no assigned vertex at round start and the final
// partial round, so work+switch+steal tokens ≈ P·rounds minus idle cells.
func TestLemma1TokenIdentity(t *testing.T) {
	tl, res := runTraced(t, 4)
	b := tl.Buckets()
	total := b.Work + b.Switch + b.Steal + b.Blocked + b.Idle
	if total != int64(4)*int64(tl.Rounds()) {
		t.Errorf("token cells %d != P·rounds %d", total, 4*tl.Rounds())
	}
	if int64(tl.Rounds()) > res.Stats.Rounds {
		t.Errorf("timeline rounds %d > stats rounds %d", tl.Rounds(), res.Stats.Rounds)
	}
}

func TestTimelineRecordsAllWork(t *testing.T) {
	g := workload.Fib(8).G
	tl := NewTimeline(2)
	res, err := sched.RunLHWS(g, sched.Options{Workers: 2, Seed: 1, Tracer: tl})
	if err != nil {
		t.Fatal(err)
	}
	if b := tl.Buckets(); b.Work != res.Stats.UserWork {
		t.Errorf("work cells %d != work %d", b.Work, res.Stats.UserWork)
	}
}

func TestUtilization(t *testing.T) {
	tl, _ := runTraced(t, 4)
	u := tl.Utilization()
	if len(u) != tl.Rounds() {
		t.Fatalf("utilization length %d != rounds %d", len(u), tl.Rounds())
	}
	for i, v := range u {
		if v < 0 || v > 1 {
			t.Fatalf("round %d: utilization %v out of [0,1]", i, v)
		}
	}
	m := tl.MeanUtilization()
	if m <= 0 || m > 1 {
		t.Fatalf("mean utilization %v out of (0,1]", m)
	}
}

func TestGantt(t *testing.T) {
	tl, _ := runTraced(t, 3)
	g := tl.Gantt(50)
	lines := strings.Split(strings.TrimRight(g, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("gantt has %d rows, want 3", len(lines))
	}
	if !strings.Contains(g, "W") {
		t.Error("gantt shows no work cells")
	}
	if !strings.HasPrefix(lines[0], "w0") {
		t.Errorf("gantt row label missing: %q", lines[0])
	}
	// Truncation marker present when limited below the round count.
	if tl.Rounds() > 50 && !strings.Contains(g, "…") {
		t.Error("expected truncation marker")
	}
}

func TestCSV(t *testing.T) {
	tl, _ := runTraced(t, 2)
	csv := tl.CSV()
	if !strings.HasPrefix(csv, "round,worker,action\n") {
		t.Fatal("missing CSV header")
	}
	if !strings.Contains(csv, ",work\n") {
		t.Error("CSV contains no work rows")
	}
	wantLines := tl.Rounds()*2 + 1
	if got := strings.Count(csv, "\n"); got != wantLines {
		t.Errorf("CSV has %d lines, want %d", got, wantLines)
	}
}

func TestCounterMatchesTimeline(t *testing.T) {
	g := workload.Server(workload.ServerConfig{Requests: 6, Delta: 11, FibWork: 3}).G
	tl := NewTimeline(3)
	c := &Counter{}
	r1, err := sched.RunLHWS(g, sched.Options{Workers: 3, Seed: 7, Tracer: tl})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := sched.RunLHWS(g, sched.Options{Workers: 3, Seed: 7, Tracer: c})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Stats != r2.Stats {
		t.Fatal("tracer choice changed execution")
	}
	tb := tl.Buckets()
	// The Counter never sees idle cells (they are unrecorded rows in the
	// Timeline), so compare the recorded buckets only.
	if c.B.Work != tb.Work || c.B.Switch != tb.Switch || c.B.Steal != tb.Steal {
		t.Errorf("counter %+v != timeline buckets %+v", c.B, tb)
	}
}

func TestAtOutOfRange(t *testing.T) {
	tl := NewTimeline(2)
	if tl.At(5, 0) != sched.ActionIdle {
		t.Error("out-of-range At should be idle")
	}
}

func TestWSTimelineShowsBlocking(t *testing.T) {
	g := workload.MapReduce(workload.MapReduceConfig{N: 8, Delta: 50, FibWork: 2}).G
	tl := NewTimeline(2)
	res, err := sched.RunWS(g, sched.Options{Workers: 2, Seed: 5, Tracer: tl})
	if err != nil {
		t.Fatal(err)
	}
	b := tl.Buckets()
	if b.Blocked == 0 {
		t.Error("WS timeline shows no blocked rounds on latency-bound workload")
	}
	if b.Blocked != res.Stats.BlockedRounds {
		t.Errorf("blocked cells %d != BlockedRounds %d", b.Blocked, res.Stats.BlockedRounds)
	}
}

func TestWorkerBucketsSumToTotals(t *testing.T) {
	tl, _ := runTraced(t, 4)
	per := tl.WorkerBuckets()
	if len(per) != 4 {
		t.Fatalf("got %d workers", len(per))
	}
	var sum Buckets
	for _, b := range per {
		sum.Work += b.Work
		sum.Switch += b.Switch
		sum.Steal += b.Steal
		sum.Blocked += b.Blocked
		sum.Idle += b.Idle
	}
	if sum != tl.Buckets() {
		t.Fatalf("per-worker sum %+v != totals %+v", sum, tl.Buckets())
	}
}

func TestSummaryRenders(t *testing.T) {
	tl, _ := runTraced(t, 2)
	s := tl.Summary()
	for _, want := range []string{"worker", "w0", "w1", "total"} {
		if !strings.Contains(s, want) {
			t.Errorf("summary missing %q:\n%s", want, s)
		}
	}
}
