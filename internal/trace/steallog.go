package trace

import (
	"fmt"
	"strings"
	"sync"
)

// StealLog collects the real runtime's steal event stream (the
// RuntimeConfig.OnSteal callback) into per-thief tallies: how many
// steals each worker performed, how many items they transferred, and
// how the steals split between local (same locality shard) and remote
// victims. The Record signature uses only basic types so the runtime
// can feed it without this package importing the runtime (trace already
// belongs to the simulator side via package sched).
//
// Record is safe for concurrent use; every thief goroutine calls it.
type StealLog struct {
	mu     sync.Mutex
	byWkr  []StealTally
	total  StealTally
	spills StealTally // events from thief ids ≥ the declared worker count
}

// StealTally aggregates steal events: Steals = Local + Remote, and
// Items ≥ Steals (every successful steal moves at least one item).
type StealTally struct {
	Steals int64
	Items  int64
	Local  int64
	Remote int64
}

// MeanBatch returns items per successful steal — the batching
// amortization factor (1.0 means single-item stealing).
func (t StealTally) MeanBatch() float64 {
	if t.Steals == 0 {
		return 0
	}
	return float64(t.Items) / float64(t.Steals)
}

// LocalityRatio returns the fraction of steals that stayed inside the
// thief's locality shard.
func (t StealTally) LocalityRatio() float64 {
	if t.Steals == 0 {
		return 0
	}
	return float64(t.Local) / float64(t.Steals)
}

// NewStealLog returns a log sized for the given worker count.
func NewStealLog(workers int) *StealLog {
	return &StealLog{byWkr: make([]StealTally, workers)}
}

// Record adds one successful steal: thief took items from victim,
// locally or not. Matches the runtime's StealEvent fields.
func (l *StealLog) Record(thief, victim, items int, local bool) {
	l.mu.Lock()
	t := &l.spills
	if thief >= 0 && thief < len(l.byWkr) {
		t = &l.byWkr[thief]
	}
	t.add(items, local)
	l.total.add(items, local)
	l.mu.Unlock()
}

func (t *StealTally) add(items int, local bool) {
	t.Steals++
	t.Items += int64(items)
	if local {
		t.Local++
	} else {
		t.Remote++
	}
}

// Total returns the run-wide tally.
func (l *StealLog) Total() StealTally {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.total
}

// Worker returns worker i's tally as a thief.
func (l *StealLog) Worker(i int) StealTally {
	l.mu.Lock()
	defer l.mu.Unlock()
	if i < 0 || i >= len(l.byWkr) {
		return StealTally{}
	}
	return l.byWkr[i]
}

// Summary renders a per-thief table with batch and locality ratios.
func (l *StealLog) Summary() string {
	l.mu.Lock()
	byWkr := append([]StealTally(nil), l.byWkr...)
	total := l.total
	l.mu.Unlock()
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-8s %8s %8s %8s %8s %10s %8s\n",
		"thief", "steals", "items", "local", "remote", "items/st", "local%")
	for w, t := range byWkr {
		fmt.Fprintf(&sb, "w%-7d %8d %8d %8d %8d %10.2f %7.1f%%\n",
			w, t.Steals, t.Items, t.Local, t.Remote, t.MeanBatch(), 100*t.LocalityRatio())
	}
	fmt.Fprintf(&sb, "%-8s %8d %8d %8d %8d %10.2f %7.1f%%\n",
		"total", total.Steals, total.Items, total.Local, total.Remote,
		total.MeanBatch(), 100*total.LocalityRatio())
	return sb.String()
}
