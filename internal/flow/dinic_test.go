package flow

import (
	"testing"
	"testing/quick"

	"lhws/internal/rng"
)

func TestSingleArc(t *testing.T) {
	g := NewNetwork(2)
	g.AddArc(0, 1, 5)
	if got := g.MaxFlow(0, 1); got != 5 {
		t.Fatalf("MaxFlow = %d, want 5", got)
	}
}

func TestNoPath(t *testing.T) {
	g := NewNetwork(3)
	g.AddArc(1, 2, 7)
	if got := g.MaxFlow(0, 2); got != 0 {
		t.Fatalf("MaxFlow = %d, want 0", got)
	}
}

func TestSourceEqualsSink(t *testing.T) {
	g := NewNetwork(1)
	if got := g.MaxFlow(0, 0); got != 0 {
		t.Fatalf("MaxFlow(s,s) = %d, want 0", got)
	}
}

// TestClassicNetwork is the textbook CLRS example with known max flow 23.
func TestClassicNetwork(t *testing.T) {
	// Vertices: 0=s, 1=v1, 2=v2, 3=v3, 4=v4, 5=t.
	g := NewNetwork(6)
	g.AddArc(0, 1, 16)
	g.AddArc(0, 2, 13)
	g.AddArc(1, 3, 12)
	g.AddArc(2, 1, 4)
	g.AddArc(2, 4, 14)
	g.AddArc(3, 2, 9)
	g.AddArc(3, 5, 20)
	g.AddArc(4, 3, 7)
	g.AddArc(4, 5, 4)
	if got := g.MaxFlow(0, 5); got != 23 {
		t.Fatalf("MaxFlow = %d, want 23", got)
	}
}

func TestParallelPaths(t *testing.T) {
	g := NewNetwork(4)
	g.AddArc(0, 1, 3)
	g.AddArc(0, 2, 4)
	g.AddArc(1, 3, 3)
	g.AddArc(2, 3, 4)
	if got := g.MaxFlow(0, 3); got != 7 {
		t.Fatalf("MaxFlow = %d, want 7", got)
	}
}

func TestBottleneck(t *testing.T) {
	// Wide fan-in/out constricted by a single middle arc.
	g := NewNetwork(6)
	for _, v := range []int{1, 2} {
		g.AddArc(0, v, 100)
		g.AddArc(v, 3, 100)
	}
	g.AddArc(3, 4, 1)
	g.AddArc(4, 5, 100)
	if got := g.MaxFlow(0, 5); got != 1 {
		t.Fatalf("MaxFlow = %d, want 1", got)
	}
}

func TestMinCutSideSeparates(t *testing.T) {
	g := NewNetwork(4)
	g.AddArc(0, 1, 2)
	g.AddArc(1, 2, 1)
	g.AddArc(2, 3, 2)
	g.MaxFlow(0, 3)
	side := g.MinCutSide(0)
	if !side[0] || side[3] {
		t.Fatalf("cut side wrong: %v", side)
	}
	// The min cut is the middle arc: 0,1 on the source side.
	if !side[1] || side[2] {
		t.Fatalf("expected cut across 1->2, got %v", side)
	}
}

// TestMaxFlowMinCutDuality generates random networks and checks that the
// flow value equals the capacity of the cut induced by MinCutSide.
func TestMaxFlowMinCutDuality(t *testing.T) {
	r := rng.New(2016)
	for trial := 0; trial < 50; trial++ {
		n := 4 + r.Intn(12)
		type arcSpec struct {
			u, v int
			c    int64
		}
		var arcs []arcSpec
		g := NewNetwork(n)
		m := n * 2
		for i := 0; i < m; i++ {
			u, v := r.Intn(n), r.Intn(n)
			if u == v {
				continue
			}
			c := int64(1 + r.Intn(20))
			arcs = append(arcs, arcSpec{u, v, c})
			g.AddArc(u, v, c)
		}
		val := g.MaxFlow(0, n-1)
		side := g.MinCutSide(0)
		if side[n-1] {
			if val != 0 {
				// t reachable in residual graph means flow not maximal.
				t.Fatalf("trial %d: sink on source side with flow %d", trial, val)
			}
			continue
		}
		var cutCap int64
		for _, a := range arcs {
			if side[a.u] && !side[a.v] {
				cutCap += a.c
			}
		}
		if cutCap != val {
			t.Fatalf("trial %d: flow %d != cut %d", trial, val, cutCap)
		}
	}
}

func TestMaxWeightClosureAllPositive(t *testing.T) {
	val, set := MaxWeightClosure([]int64{3, 4, 5}, nil)
	if val != 12 {
		t.Fatalf("value = %d, want 12", val)
	}
	for i, in := range set {
		if !in {
			t.Fatalf("vertex %d excluded from all-positive closure", i)
		}
	}
}

func TestMaxWeightClosureAllNegative(t *testing.T) {
	val, set := MaxWeightClosure([]int64{-1, -2}, nil)
	if val != 0 {
		t.Fatalf("value = %d, want 0 (empty closure)", val)
	}
	for i, in := range set {
		if in {
			t.Fatalf("vertex %d included in closure of all-negative weights", i)
		}
	}
}

func TestMaxWeightClosurePrecedence(t *testing.T) {
	// Taking vertex 0 (+5) requires vertex 1 (-3): net +2, worth it.
	// Taking vertex 2 (+1) requires vertex 3 (-4): net -3, not worth it.
	weights := []int64{5, -3, 1, -4}
	requires := [][2]int{{0, 1}, {2, 3}}
	val, set := MaxWeightClosure(weights, requires)
	if val != 2 {
		t.Fatalf("value = %d, want 2", val)
	}
	if !set[0] || !set[1] || set[2] || set[3] {
		t.Fatalf("closure = %v, want {0,1}", set)
	}
}

func TestMaxWeightClosureChain(t *testing.T) {
	// 0 requires 1 requires 2; weights +10, -4, -5 → take all, value 1.
	val, set := MaxWeightClosure([]int64{10, -4, -5}, [][2]int{{0, 1}, {1, 2}})
	if val != 1 {
		t.Fatalf("value = %d, want 1", val)
	}
	if !set[0] || !set[1] || !set[2] {
		t.Fatalf("closure = %v, want all", set)
	}
}

// TestClosureAgainstBruteForce cross-checks the flow-based closure solver
// against exhaustive enumeration on small random instances.
func TestClosureAgainstBruteForce(t *testing.T) {
	r := rng.New(7)
	for trial := 0; trial < 100; trial++ {
		n := 1 + r.Intn(10)
		weights := make([]int64, n)
		for i := range weights {
			weights[i] = int64(r.Intn(21) - 10)
		}
		var requires [][2]int
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i != j && r.Float64() < 0.15 {
					requires = append(requires, [2]int{i, j})
				}
			}
		}
		got, gotSet := MaxWeightClosure(weights, requires)

		// Brute force over all subsets.
		var best int64
		for mask := 0; mask < 1<<n; mask++ {
			ok := true
			for _, req := range requires {
				if mask&(1<<req[0]) != 0 && mask&(1<<req[1]) == 0 {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			var w int64
			for i := 0; i < n; i++ {
				if mask&(1<<i) != 0 {
					w += weights[i]
				}
			}
			if w > best {
				best = w
			}
		}
		if got != best {
			t.Fatalf("trial %d: closure value %d, brute force %d", trial, got, best)
		}
		// Verify the returned set is a valid closure achieving the value.
		var setVal int64
		for i, in := range gotSet {
			if in {
				setVal += weights[i]
			}
		}
		if setVal != got {
			t.Fatalf("trial %d: returned set value %d != reported %d", trial, setVal, got)
		}
		for _, req := range requires {
			if gotSet[req[0]] && !gotSet[req[1]] {
				t.Fatalf("trial %d: returned set violates precedence %v", trial, req)
			}
		}
	}
}

func TestAddArcPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewNetwork(2).AddArc(0, 5, 1)
}

func TestAddArcPanicsNegativeCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewNetwork(2).AddArc(0, 1, -1)
}

// TestFlowConservationRandom uses quick.Check over small random layered
// networks: flow must never exceed both the source out-capacity and sink
// in-capacity.
func TestFlowConservationRandom(t *testing.T) {
	fn := func(seed uint64) bool {
		r := rng.New(seed)
		n := 3 + r.Intn(8)
		g := NewNetwork(n)
		var srcCap, sinkCap int64
		for i := 0; i < 2*n; i++ {
			u, v := r.Intn(n), r.Intn(n)
			if u == v {
				continue
			}
			c := int64(1 + r.Intn(10))
			g.AddArc(u, v, c)
			if u == 0 {
				srcCap += c
			}
			if v == n-1 {
				sinkCap += c
			}
		}
		f := g.MaxFlow(0, n-1)
		return f >= 0 && f <= srcCap && f <= sinkCap
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkMaxFlowGrid(b *testing.B) {
	// A k×k grid network from corner to corner.
	const k = 30
	id := func(i, j int) int { return i*k + j }
	for n := 0; n < b.N; n++ {
		g := NewNetwork(k * k)
		for i := 0; i < k; i++ {
			for j := 0; j < k; j++ {
				if i+1 < k {
					g.AddArc(id(i, j), id(i+1, j), 3)
				}
				if j+1 < k {
					g.AddArc(id(i, j), id(i, j+1), 2)
				}
			}
		}
		g.MaxFlow(0, k*k-1)
	}
}
