// Package flow implements a maximum-flow solver (Dinic's algorithm) and the
// maximum-weight-closure reduction built on it.
//
// The dag package uses closure to compute the suspension width U of a
// weighted computation dag exactly: executed-vertex prefixes of a schedule
// are precisely the predecessor-closed vertex sets ("downsets") of the dag,
// and the number of suspended vertices under prefix S is the number of heavy
// edges (u,v) with u ∈ S, v ∉ S. Because a suspended vertex has in-degree 1
// (§2 of the paper), that count equals Σ_{heavy (u,v)} ([u∈S] − [v∈S]),
// a linear function of membership — so maximizing it over downsets is a
// maximum-weight-closure problem, solvable in polynomial time by min-cut.
package flow

// Network is a flow network over vertices 0..n-1 using an adjacency-list
// representation with paired residual arcs.
type Network struct {
	n    int
	head [][]int // per-vertex indices into arcs
	arcs []arc
}

type arc struct {
	to  int
	cap int64
}

// Inf is a capacity value treated as unbounded. It is large enough that no
// practical sum of finite capacities in this codebase reaches it.
const Inf = int64(1) << 60

// NewNetwork returns an empty flow network with n vertices.
func NewNetwork(n int) *Network {
	return &Network{n: n, head: make([][]int, n)}
}

// AddArc adds a directed arc u→v with the given capacity and its residual
// reverse arc of capacity zero.
func (g *Network) AddArc(u, v int, capacity int64) {
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		panic("flow: arc endpoint out of range")
	}
	if capacity < 0 {
		panic("flow: negative capacity")
	}
	g.head[u] = append(g.head[u], len(g.arcs))
	g.arcs = append(g.arcs, arc{to: v, cap: capacity})
	g.head[v] = append(g.head[v], len(g.arcs))
	g.arcs = append(g.arcs, arc{to: u, cap: 0})
}

// MaxFlow computes the maximum s→t flow with Dinic's algorithm and returns
// its value. The network's residual capacities are mutated; call MinCutSide
// afterwards to retrieve the source side of a minimum cut.
func (g *Network) MaxFlow(s, t int) int64 {
	if s == t {
		return 0
	}
	var total int64
	level := make([]int, g.n)
	iter := make([]int, g.n)
	queue := make([]int, 0, g.n)
	for g.bfs(s, t, level, &queue) {
		for i := range iter {
			iter[i] = 0
		}
		for {
			f := g.dfs(s, t, Inf, level, iter)
			if f == 0 {
				break
			}
			total += f
		}
	}
	return total
}

// bfs builds the level graph; returns false when t is unreachable.
func (g *Network) bfs(s, t int, level []int, queue *[]int) bool {
	for i := range level {
		level[i] = -1
	}
	q := (*queue)[:0]
	level[s] = 0
	q = append(q, s)
	for len(q) > 0 {
		u := q[0]
		q = q[1:]
		for _, ai := range g.head[u] {
			a := g.arcs[ai]
			if a.cap > 0 && level[a.to] < 0 {
				level[a.to] = level[u] + 1
				q = append(q, a.to)
			}
		}
	}
	*queue = q
	return level[t] >= 0
}

// dfs sends a blocking-flow augmenting path in the level graph.
func (g *Network) dfs(u, t int, f int64, level, iter []int) int64 {
	if u == t {
		return f
	}
	for ; iter[u] < len(g.head[u]); iter[u]++ {
		ai := g.head[u][iter[u]]
		a := &g.arcs[ai]
		if a.cap <= 0 || level[a.to] != level[u]+1 {
			continue
		}
		d := f
		if a.cap < d {
			d = a.cap
		}
		got := g.dfs(a.to, t, d, level, iter)
		if got > 0 {
			a.cap -= got
			g.arcs[ai^1].cap += got
			return got
		}
	}
	level[u] = -1
	return 0
}

// MinCutSide returns, after MaxFlow, the set of vertices reachable from s
// in the residual network — the source side of a minimum cut — as a boolean
// slice indexed by vertex.
func (g *Network) MinCutSide(s int) []bool {
	side := make([]bool, g.n)
	stack := []int{s}
	side[s] = true
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, ai := range g.head[u] {
			a := g.arcs[ai]
			if a.cap > 0 && !side[a.to] {
				side[a.to] = true
				stack = append(stack, a.to)
			}
		}
	}
	return side
}

// MaxWeightClosure solves the maximum-weight closure problem: given vertex
// weights and precedence arcs (membership of v implies membership of u for
// each arc (v, u)), it returns the maximum total weight over all closed
// sets and one optimal closed set. The empty set is a valid closure, so the
// result is never negative.
//
// The standard reduction: source → positive-weight vertices with capacity
// w(v); negative-weight vertices → sink with capacity −w(v); each
// precedence arc (v, u) becomes v → u with infinite capacity. Optimal value
// = Σ positive weights − min cut; the optimal closure is the source side of
// the cut minus the source.
func MaxWeightClosure(weights []int64, requires [][2]int) (int64, []bool) {
	n := len(weights)
	g := NewNetwork(n + 2)
	s, t := n, n+1
	var positive int64
	for v, w := range weights {
		if w > 0 {
			positive += w
			g.AddArc(s, v, w)
		} else if w < 0 {
			g.AddArc(v, t, -w)
		}
	}
	for _, r := range requires {
		v, u := r[0], r[1]
		g.AddArc(v, u, Inf)
	}
	cut := g.MaxFlow(s, t)
	side := g.MinCutSide(s)
	closure := make([]bool, n)
	copy(closure, side[:n])
	return positive - cut, closure
}
