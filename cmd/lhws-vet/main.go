// Command lhws-vet runs this repository's scheduler-aware static
// analyzers over the named packages (default ./...):
//
//	dequeowner  owner-only deque operations confined to declared owners
//	noblock     no blocking operations in //lhws:nonblocking hot paths
//	atomicpair  no mixed sync/atomic and plain access to one variable
//	rngplumb    no math/rand global state outside internal/rng
//
// Exit status is 0 when clean, 1 when any analyzer reported a
// diagnostic, and 2 on usage or load errors, so CI can gate on it the
// same way it gates on go vet.
package main

import (
	"lhws/internal/analysis/atomicpair"
	"lhws/internal/analysis/dequeowner"
	"lhws/internal/analysis/multichecker"
	"lhws/internal/analysis/noblock"
	"lhws/internal/analysis/rngplumb"
)

func main() {
	multichecker.Main(
		dequeowner.Analyzer,
		noblock.Analyzer,
		atomicpair.Analyzer,
		rngplumb.Analyzer,
	)
}
