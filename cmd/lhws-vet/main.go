// Command lhws-vet runs this repository's scheduler-aware static
// analyzers over the named packages (default ./...):
//
//	dequeowner   owner-only deque operations confined to declared owners
//	noblock      no blocking operations in //lhws:nonblocking hot paths
//	suspendcolor no-suspend regions cannot reach a task suspension
//	lockheld     no mutex held across a may-suspend call
//	ctxleak      no task context escapes its task's lifetime
//	atomicpair   no mixed sync/atomic and plain access to one variable
//	rngplumb     no math/rand global state outside internal/rng
//
// The driver loads the full dependency graph and builds a whole-program
// call graph, so suspension and blocking facts propagate across package
// boundaries (see internal/analysis). Flags:
//
//	-tags <list>  build tags forwarded to the loader (e.g. lhwsepoll)
//	-json         machine-readable diagnostics on stdout
//	-facts        dump the computed interprocedural fact table
//
// Exit status is 0 when clean, 1 when any analyzer reported a
// diagnostic, and 2 on usage or load errors, so CI can gate on it the
// same way it gates on go vet.
package main

import (
	"lhws/internal/analysis/atomicpair"
	"lhws/internal/analysis/ctxleak"
	"lhws/internal/analysis/dequeowner"
	"lhws/internal/analysis/lockheld"
	"lhws/internal/analysis/multichecker"
	"lhws/internal/analysis/noblock"
	"lhws/internal/analysis/rngplumb"
	"lhws/internal/analysis/suspendcolor"
)

func main() {
	multichecker.Main(
		dequeowner.Analyzer,
		noblock.Analyzer,
		suspendcolor.Analyzer,
		lockheld.Analyzer,
		ctxleak.Analyzer,
		atomicpair.Analyzer,
		rngplumb.Analyzer,
	)
}
