// Command lhws-sim runs one workload under one scheduler and prints the
// execution statistics, optionally with an ASCII Gantt timeline or a DOT
// rendering of the computation dag.
//
// Usage:
//
//	lhws-sim -workload mapreduce -n 64 -delta 50 -fib 4 -sched lhws -p 4
//	lhws-sim -workload server -n 10 -sched ws -p 2 -gantt
//	lhws-sim -workload fib -n 10 -dot        # print the dag, don't run
package main

import (
	"flag"
	"fmt"
	"os"

	"lhws/internal/dag"
	"lhws/internal/sched"
	"lhws/internal/trace"
	"lhws/internal/workload"
)

func main() {
	var (
		wl       = flag.String("workload", "mapreduce", "workload: mapreduce, server, fib, pipeline, random")
		n        = flag.Int("n", 32, "size: elements (mapreduce), requests (server), fib input, items (pipeline), target vertices (random)")
		delta    = flag.Int64("delta", 50, "heavy-edge latency in rounds")
		fib      = flag.Int("fib", 4, "per-element fib work (mapreduce/server)")
		schedFlg = flag.String("sched", "lhws", "scheduler: lhws, lhws-opt, ws, greedy")
		p        = flag.Int("p", 4, "workers")
		seed     = flag.Uint64("seed", 1, "random seed")
		gantt    = flag.Bool("gantt", false, "print an ASCII timeline (small runs only)")
		summary  = flag.Bool("summary", false, "print per-worker action buckets")
		csv      = flag.Bool("csv", false, "print the timeline as CSV")
		dot      = flag.Bool("dot", false, "print the dag in DOT format and exit")
		load     = flag.String("load", "", "load the dag from a file (text format) instead of generating it")
		save     = flag.String("save", "", "save the generated dag to a file (text format) and exit")
	)
	flag.Parse()

	var w *workload.Workload
	var err error
	if *load != "" {
		w, err = loadWorkload(*load)
	} else {
		w, err = buildWorkload(*wl, *n, *delta, *fib, *seed)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *save != "" {
		f, err := os.Create(*save)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := w.G.Encode(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%s)\n", *save, w.G)
		return
	}
	if *dot {
		fmt.Print(w.G.DOT(w.Name))
		return
	}
	fmt.Printf("workload: %s\n", w)

	opt := sched.Options{Workers: *p, Seed: *seed, TrackDepths: true}
	var tl *trace.Timeline
	if *gantt || *csv || *summary {
		tl = trace.NewTimeline(*p)
		opt.Tracer = tl
	}

	var res *sched.Result
	switch *schedFlg {
	case "lhws":
		res, err = sched.RunLHWS(w.G, opt)
	case "lhws-opt":
		opt.Policy = sched.StealWorkerThenDeque
		res, err = sched.RunLHWS(w.G, opt)
	case "ws":
		res, err = sched.RunWS(w.G, opt)
	case "greedy":
		res, err = sched.RunGreedy(w.G, *p)
	default:
		fmt.Fprintf(os.Stderr, "unknown scheduler %q\n", *schedFlg)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	s := res.Stats
	fmt.Printf("scheduler: %s  P=%d  seed=%d\n", *schedFlg, *p, *seed)
	fmt.Printf("rounds:        %d\n", s.Rounds)
	fmt.Printf("work:          %d user + %d pfor\n", s.UserWork, s.PforWork)
	fmt.Printf("switches:      %d\n", s.Switches)
	fmt.Printf("steals:        %d of %d attempts\n", s.StealSuccesses, s.StealAttempts)
	fmt.Printf("blocked:       %d worker-rounds\n", s.BlockedRounds)
	fmt.Printf("max suspended: %d (U = %d)\n", s.MaxSuspended, w.G.SuspensionWidth())
	fmt.Printf("max deques/w:  %d\n", s.MaxDequesPerWorker)
	if s.EnablingSpan > 0 {
		fmt.Printf("enabling span: %d (S = %d)\n", s.EnablingSpan, w.G.Span())
	}
	if tl != nil {
		if *gantt {
			fmt.Printf("\ntimeline (W=work F=pfor C=switch S=steal s=miss B=blocked .=idle):\n%s", tl.Gantt(160))
		}
		if *summary {
			fmt.Printf("\n%s", tl.Summary())
		}
		if *csv {
			fmt.Print(tl.CSV())
		}
		fmt.Printf("mean utilization: %.1f%%\n", 100*tl.MeanUtilization())
	}
}

func loadWorkload(path string) (*workload.Workload, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	g, err := dag.Decode(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &workload.Workload{Name: path, G: g, AnalyticU: -1}, nil
}

func buildWorkload(kind string, n int, delta int64, fib int, seed uint64) (*workload.Workload, error) {
	switch kind {
	case "mapreduce":
		return workload.MapReduce(workload.MapReduceConfig{N: n, Delta: delta, FibWork: fib}), nil
	case "server":
		return workload.Server(workload.ServerConfig{Requests: n, Delta: delta, FibWork: fib}), nil
	case "fib":
		return workload.Fib(n), nil
	case "pipeline":
		return workload.Pipeline(workload.PipelineConfig{Items: n, Stages: 3, StageWork: 5, Delta: delta}), nil
	case "random":
		return workload.Random(workload.RandomConfig{Seed: seed, TargetVertices: n, PHeavy: 0.3, MaxDelta: delta}), nil
	case "figure1":
		b := dag.NewBuilder()
		fork := b.Vertex("fork")
		mul := b.Vertex("y=6*7")
		input := b.Vertex("input")
		double := b.Vertex("x=2*x")
		add := b.Vertex("x+y")
		b.Light(fork, mul)
		b.Light(fork, input)
		b.Heavy(input, double, delta)
		b.Light(mul, add)
		b.Light(double, add)
		return &workload.Workload{Name: "figure1", G: b.MustGraph(), AnalyticU: 1}, nil
	default:
		return nil, fmt.Errorf("unknown workload %q (want mapreduce, server, fib, pipeline, random, figure1)", kind)
	}
}
