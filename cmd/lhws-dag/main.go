// Command lhws-dag inspects weighted-dag files in the text format of
// internal/dag: validation, the model metrics (work, span, suspension
// width), the critical path, a witness execution prefix achieving the
// suspension width, and DOT conversion.
//
// Usage:
//
//	lhws-sim -workload mapreduce -n 16 -save mr.dag   # produce a file
//	lhws-dag mr.dag                                   # metrics summary
//	lhws-dag -critical mr.dag                         # critical path
//	lhws-dag -prefix mr.dag                           # max-width prefix
//	lhws-dag -dot mr.dag | dot -Tpng > mr.png
package main

import (
	"flag"
	"fmt"
	"os"

	"lhws/internal/dag"
)

func main() {
	var (
		dot      = flag.Bool("dot", false, "emit Graphviz DOT")
		critical = flag.Bool("critical", false, "print the critical (longest weighted) path")
		prefix   = flag.Bool("prefix", false, "print an execution prefix achieving the suspension width")
		levels   = flag.Bool("levels", false, "print the level structure")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: lhws-dag [flags] <file.dag>")
		flag.PrintDefaults()
		os.Exit(2)
	}
	path := flag.Arg(0)
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	g, err := dag.Decode(f)
	f.Close()
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", path, err)
		os.Exit(1)
	}

	switch {
	case *dot:
		fmt.Print(g.DOT(path))
	case *critical:
		printPath(g)
	case *prefix:
		printPrefix(g)
	case *levels:
		printLevels(g)
	default:
		fmt.Printf("%s: %s\n", path, g.Summary())
		fmt.Printf("vertices: %d  edges: %d  heavy: %d  total latency: %d\n",
			g.NumVertices(), g.NumEdges(), g.HeavyEdges(), g.TotalLatency())
		fmt.Printf("unweighted span: %d (weighted %d)\n", g.UnweightedSpan(), g.Span())
	}
}

func printPath(g *dag.Graph) {
	path := g.CriticalPath()
	fmt.Printf("critical path (%d vertices, weighted length %d):\n", len(path), g.Span()-1)
	for i, v := range path {
		label := g.Label(v)
		if label == "" {
			label = "·"
		}
		if i > 0 {
			w, _ := g.Edge(path[i-1], v)
			if w > 1 {
				fmt.Printf("  --%d-->", w)
			} else {
				fmt.Printf("  -->")
			}
		}
		fmt.Printf(" %d(%s)", v, label)
	}
	fmt.Println()
}

func printPrefix(g *dag.Graph) {
	set, width := g.MaxWidthPrefix()
	fmt.Printf("suspension width %d; executed prefix achieving it:\n", width)
	count := 0
	for v, in := range set {
		if in {
			count++
			fmt.Printf("  %d", v)
			if count%12 == 0 {
				fmt.Println()
			}
		}
	}
	fmt.Printf("\n(%d of %d vertices executed)\n", count, g.NumVertices())
}

func printLevels(g *dag.Graph) {
	for i, level := range g.Levels() {
		fmt.Printf("level %3d: %d vertices\n", i, len(level))
	}
}
