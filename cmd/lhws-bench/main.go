// Command lhws-bench regenerates the paper's evaluation (Figure 11) and
// the bound-validation experiments of this reproduction. See EXPERIMENTS.md
// for the experiment index.
//
// Usage:
//
//	lhws-bench -exp fig11 [-delta 500] [-full] [-seed 1]
//	lhws-bench -exp greedy|bound|lemmas|steals|uwidth|wallclock|all
//	lhws-bench -exp runtime [-out BENCH_runtime.json]
//	lhws-bench -exp io [-ioout BENCH_io.json]
//	lhws-bench -exp iothrough [-iosmoke]
//
// Output is a fixed-width table per experiment plus a PASS/FAIL line for
// the experiment's shape check. -markdown switches tables to Markdown for
// pasting into documents. -exp runtime additionally writes the hot-path
// microbenchmark sweep (ns/op, allocs/op, baseline deltas) as JSON to
// -out, the checked-in regression baseline; -exp io writes the
// real-socket echo comparison (latency-hiding vs blocking throughput at
// δ=50ms) plus the data-plane throughput sweep (pooled vs malloc'd
// buffers, vectored vs scalar writes at C=4096) to -ioout as one
// combined record. -exp iothrough runs just the data-plane sweep
// without touching the JSON; -iosmoke shrinks it to CI smoke scale
// with loose no-collapse gates.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	goruntime "runtime"
	"runtime/pprof"
	"time"

	"lhws/internal/experiments"
	"lhws/internal/plot"
	"lhws/internal/stats"
)

type tabler interface {
	Table() *stats.Table
	Check() error
}

func main() {
	var (
		exp        = flag.String("exp", "all", "experiment: fig11, greedy, bound, lemmas, steals, variants, potential, uwidth, wallclock, responsiveness, multiprog, scale, runtime, io, iothrough, goodput, steal, all")
		deltaMS    = flag.Float64("delta", 0, "fig11 panel latency in ms (500, 50, 1); 0 runs all three panels")
		full       = flag.Bool("full", false, "fig11 at the paper's full scale (n=5000) instead of the laptop scale (n=500)")
		seed       = flag.Uint64("seed", 1, "random seed")
		markdown   = flag.Bool("markdown", false, "render tables as Markdown")
		svgDir     = flag.String("svg", "", "directory to write Figure-11 panels as SVG plots (fig11 only)")
		jsonOut    = flag.String("out", "BENCH_runtime.json", "output path for the -exp runtime JSON sweep")
		jsonOutIO  = flag.String("ioout", "BENCH_io.json", "output path for the -exp io JSON comparison")
		ioSmoke    = flag.Bool("iosmoke", false, "iothrough at CI smoke scale (small load, no-collapse gates only, no JSON)")
		goodOut    = flag.String("goodout", "BENCH_goodput.json", "output path for the -exp goodput JSON sweep")
		goodSmoke  = flag.Bool("goodsmoke", false, "goodput at CI smoke scale (tiny load, no-collapse gate only, no JSON)")
		stealOut   = flag.String("stealout", "BENCH_steal.json", "output path for the -exp steal JSON sweep")
		stealSmoke = flag.Bool("stealsmoke", false, "steal economics at CI smoke scale (ratio gates only, no JSON)")
		memProf    = flag.String("memprofile", "", "write an allocation profile for the run to this file (for chasing allocs/req regressions)")
	)
	flag.Parse()
	if *memProf != "" {
		goruntime.MemProfileRate = 16 // sample nearly every allocation
	}

	if goruntime.GOMAXPROCS(0) < 4 {
		goruntime.GOMAXPROCS(4) // let runtime workers interleave for -exp wallclock
	}

	ok := true
	run := func(name string, f func() (tabler, error)) {
		start := time.Now()
		r, err := f()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: error: %v\n", name, err)
			ok = false
			return
		}
		fmt.Printf("== %s (%.1fs) ==\n", name, time.Since(start).Seconds())
		if *markdown {
			fmt.Println(r.Table().Markdown())
		} else {
			fmt.Println(r.Table())
		}
		if err := r.Check(); err != nil {
			fmt.Printf("CHECK FAIL: %v\n\n", err)
			ok = false
		} else {
			fmt.Printf("CHECK PASS\n\n")
		}
	}

	fig11 := func(d float64) {
		cfg := experiments.ScaledFig11(d)
		if *full {
			cfg = experiments.FullFig11(d)
		}
		cfg.Seed = *seed
		run(fmt.Sprintf("fig11 δ=%vms (n=%d, fib=%d, δ=%d rounds)", d, cfg.N, cfg.FibWork,
			experiments.DeltaRounds(d, cfg.FibWork)),
			func() (tabler, error) {
				r, err := experiments.Fig11(cfg)
				if err == nil && *svgDir != "" {
					if werr := writeFig11SVG(*svgDir, d, r); werr != nil {
						fmt.Fprintf(os.Stderr, "svg: %v\n", werr)
					}
				}
				return r, err
			})
	}

	want := func(name string) bool { return *exp == name || *exp == "all" }

	if want("fig11") {
		if *deltaMS != 0 {
			fig11(*deltaMS)
		} else {
			for _, d := range []float64{500, 50, 1} {
				fig11(d)
			}
		}
	}
	if want("greedy") {
		run("greedy (Theorem 1)", func() (tabler, error) { return experiments.Greedy(*seed) })
	}
	if want("bound") {
		run("bound (Theorem 2)", func() (tabler, error) { return experiments.Bound(*seed) })
	}
	if want("lemmas") {
		run("lemmas (1, 7, Cor. 1, §5 U)", func() (tabler, error) { return experiments.Lemmas(*seed) })
	}
	if want("steals") {
		run("steal-policy ablation (§6)", func() (tabler, error) { return experiments.Steals(*seed) })
	}
	if want("variants") {
		run("design-variant ablation (§7)", func() (tabler, error) { return experiments.Variants(*seed) })
	}
	if want("potential") {
		run("potential function (§4)", func() (tabler, error) { return experiments.Potential(*seed) })
	}
	if want("uwidth") {
		run("suspension width (§5)", func() (tabler, error) { return experiments.UWidth(*seed) })
	}
	if want("wallclock") {
		run("wall-clock runtime", func() (tabler, error) { return experiments.Wallclock(experiments.ScaledWallclock()) })
	}
	if want("responsiveness") {
		run("interactive responsiveness", func() (tabler, error) {
			return experiments.Responsiveness(experiments.ScaledResponsiveness())
		})
	}
	if want("multiprog") {
		run("multiprogrammed environment (ABP)", func() (tabler, error) { return experiments.Multiprogrammed(*seed) })
	}
	if want("scale") {
		run("high-P scaling (beyond the paper's sweep)", func() (tabler, error) { return experiments.Scale(*seed) })
	}
	if want("runtime") {
		run("runtime overheads (hot-path microbenchmarks)", func() (tabler, error) {
			r, err := experiments.RuntimeBench(*seed)
			if err == nil {
				if werr := writeRuntimeJSON(*jsonOut, r); werr != nil {
					fmt.Fprintf(os.Stderr, "json: %v\n", werr)
					ok = false
				}
			}
			return r, err
		})
	}

	if want("io") {
		rec := &ioRecord{}
		run("real-socket echo (latency hiding vs blocking, δ=50ms)", func() (tabler, error) {
			r, err := experiments.IOBench(experiments.ScaledIOBench())
			rec.Echo = r
			return r, err
		})
		run("io data plane (pooled/vectored throughput, C=4096)", func() (tabler, error) {
			r, err := experiments.IOThroughput(experiments.ScaledIOThroughput())
			rec.Throughput = r
			return r, err
		})
		if rec.Echo != nil && rec.Throughput != nil {
			if werr := writeIOJSON(*jsonOutIO, rec); werr != nil {
				fmt.Fprintf(os.Stderr, "json: %v\n", werr)
				ok = false
			}
		}
	}

	if *exp == "iothrough" {
		cfg := experiments.ScaledIOThroughput()
		label := "io data plane (pooled/vectored throughput, C=4096)"
		if *ioSmoke {
			cfg = experiments.SmokeIOThroughput()
			label = "io data plane (smoke)"
		}
		run(label, func() (tabler, error) { return experiments.IOThroughput(cfg) })
	}

	if want("goodput") {
		cfg := experiments.ScaledGoodput()
		label := "goodput under overload (shed vs noshed, 0.5x-4x)"
		if *goodSmoke {
			cfg = experiments.SmokeGoodput()
			label = "goodput under overload (smoke)"
		}
		run(label, func() (tabler, error) {
			r, err := experiments.GoodputBench(cfg)
			if err == nil && !*goodSmoke {
				if werr := writeGoodputJSON(*goodOut, r); werr != nil {
					fmt.Fprintf(os.Stderr, "json: %v\n", werr)
					ok = false
				}
			}
			return r, err
		})
	}

	if want("steal") {
		cfg := experiments.ScaledStealBench()
		label := "steal economics (batched vs single-item, locality shards)"
		if *stealSmoke {
			cfg = experiments.SmokeStealBench()
			label = "steal economics (smoke)"
		}
		cfg.Seed = *seed
		run(label, func() (tabler, error) {
			r, err := experiments.StealBench(cfg)
			if err == nil && !*stealSmoke {
				if werr := writeStealJSON(*stealOut, r); werr != nil {
					fmt.Fprintf(os.Stderr, "json: %v\n", werr)
					ok = false
				}
			}
			return r, err
		})
	}

	if *memProf != "" {
		if f, err := os.Create(*memProf); err != nil {
			fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
		} else {
			goruntime.GC()
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			}
			f.Close()
		}
	}
	if !ok {
		os.Exit(1)
	}
}

// writeStealJSON writes the steal-economics sweep as the
// BENCH_steal.json regression record.
func writeStealJSON(path string, r *experiments.StealBenchResult) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}

// writeGoodputJSON writes the overload sweep as the BENCH_goodput.json
// robustness record.
func writeGoodputJSON(path string, r *experiments.GoodputResult) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}

// ioRecord is the combined BENCH_io.json payload: the scheduling
// comparison (echo, latency hiding vs blocking) and the data-plane
// throughput sweep (pooled vs malloc'd buffers, vectored vs scalar
// writes).
type ioRecord struct {
	Echo       *experiments.IOBenchResult      `json:"echo"`
	Throughput *experiments.IOThroughputResult `json:"throughput"`
}

// writeIOJSON writes the combined io record as BENCH_io.json.
func writeIOJSON(path string, r *ioRecord) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}

// writeRuntimeJSON writes the hot-path sweep as the BENCH_runtime.json
// regression baseline.
func writeRuntimeJSON(path string, r *experiments.RuntimeBenchResult) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}

// writeFig11SVG renders one Figure-11 panel in the paper's plot
// coordinates (self-speedup vs. processors, LHWS and WS curves).
func writeFig11SVG(dir string, deltaMS float64, r *experiments.Fig11Result) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	lhws := plot.Series{Name: "algo=LHWS"}
	ws := plot.Series{Name: "algo=WS"}
	for _, pt := range r.Points {
		lhws.X = append(lhws.X, float64(pt.P))
		lhws.Y = append(lhws.Y, pt.LHWSSpeedup)
		ws.X = append(ws.X, float64(pt.P))
		ws.Y = append(ws.Y, pt.WSSpeedup)
	}
	chart := &plot.Chart{
		Title:  fmt.Sprintf("Figure 11: δ = %vms (n=%d)", deltaMS, r.Cfg.N),
		XLabel: "proc",
		YLabel: "speedup",
		Series: []plot.Series{lhws, ws},
	}
	path := filepath.Join(dir, fmt.Sprintf("fig11_delta%gms.svg", deltaMS))
	if err := os.WriteFile(path, []byte(chart.SVG()), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}
