package lhws_test

import (
	"fmt"

	"lhws"
)

// ExampleRunLHWS schedules the paper's Figure-1 dag — a fork whose right
// branch waits on user input — under the latency-hiding scheduler.
func ExampleRunLHWS() {
	b := lhws.NewDAGBuilder()
	fork := b.Vertex("fork")
	mul := b.Vertex("y=6*7")
	input := b.Vertex("input")
	double := b.Vertex("x=2*x")
	add := b.Vertex("x+y")
	b.Light(fork, mul)
	b.Light(fork, input)
	b.Heavy(input, double, 100) // reading input takes 100 steps
	b.Light(mul, add)
	b.Light(double, add)
	g := b.MustGraph()

	res, err := lhws.RunLHWS(g, lhws.SchedOptions{Workers: 2, Seed: 1})
	if err != nil {
		panic(err)
	}
	fmt.Println("work:", res.Stats.UserWork)
	fmt.Println("suspended at once:", res.Stats.MaxSuspended)
	// Output:
	// work: 5
	// suspended at once: 1
}

// ExampleGraph_SuspensionWidth computes the §5 suspension widths: n for
// the distributed map-reduce, 1 for the server.
func ExampleGraph_SuspensionWidth() {
	mr := lhws.MapReduce(lhws.MapReduceConfig{N: 16, Delta: 50, FibWork: 3})
	srv := lhws.Server(lhws.ServerConfig{Requests: 16, Delta: 50, FibWork: 3})
	fmt.Println("map-reduce U:", mr.G.SuspensionWidth())
	fmt.Println("server U:", srv.G.SuspensionWidth())
	// Output:
	// map-reduce U: 16
	// server U: 1
}

// ExampleRunGreedy demonstrates the Theorem-1 guarantee: greedy schedules
// never exceed W/P + S rounds.
func ExampleRunGreedy() {
	g := lhws.Fib(10).G
	res, err := lhws.RunGreedy(g, 4)
	if err != nil {
		panic(err)
	}
	fmt.Println("within bound:", res.Stats.Rounds <= lhws.GreedyBound(g, 4))
	// Output:
	// within bound: true
}

// ExampleRunTasks runs real code on the latency-hiding runtime: the
// spawned fetch suspends its task, not its worker.
func ExampleRunTasks() {
	var result int
	_, err := lhws.RunTasks(lhws.RuntimeConfig{Workers: 2, Mode: lhws.LatencyHiding}, func(c *lhws.Ctx) {
		remote := lhws.SpawnValue(c, func(cc *lhws.Ctx) int {
			cc.Latency(1e6) // 1ms remote call
			return 2 * 21
		})
		local := 6 * 7
		result = local + remote.Await(c)
	})
	if err != nil {
		panic(err)
	}
	fmt.Println(result)
	// Output:
	// 84
}

// ExampleParallelMapReduce is §5's distributed map-reduce as one call.
func ExampleParallelMapReduce() {
	var sum int
	_, err := lhws.RunTasks(lhws.RuntimeConfig{Workers: 4, Mode: lhws.LatencyHiding}, func(c *lhws.Ctx) {
		sum = lhws.ParallelMapReduce(c, 0, 100, 0,
			func(cc *lhws.Ctx, i int) int {
				cc.Latency(1e5) // fetch element i
				return i
			},
			func(a, b int) int { return a + b })
	})
	if err != nil {
		panic(err)
	}
	fmt.Println(sum)
	// Output:
	// 4950
}
