#!/bin/sh
# Reproduce the full evaluation: build, test, run every experiment with its
# shape check, regenerate the Figure-11 SVGs, and run the benchmark suite.
# Artifacts land in the repository root (test_output.txt, bench_output.txt)
# and figures/.
set -eu
cd "$(dirname "$0")/.."

echo "== build + vet =="
go build ./...
go vet ./...

echo "== tests =="
go test ./... 2>&1 | tee test_output.txt

echo "== experiments (laptop scale) =="
go run ./cmd/lhws-bench -exp all

echo "== Figure 11 at paper scale (n=5000) + SVG figures =="
go run ./cmd/lhws-bench -exp fig11 -full -svg figures

echo "== benchmarks =="
go test -bench=. -benchmem ./... 2>&1 | tee bench_output.txt

echo "reproduction complete"
