module lhws

go 1.24
