module lhws

go 1.24

// No requirements, deliberately: the module is stdlib-only so the full
// build/test/vet pipeline runs offline. In particular, internal/analysis
// implements its own loader (go list -export + the gc export-data
// importer) and analysistest harness instead of depending on
// golang.org/x/tools/go/analysis, whose API it mirrors; if this module
// ever grows a vendored toolchain, the analyzers port over directly.
