// Package lhws is a Go implementation of latency-hiding work stealing
// (Muller & Acar, "Latency-Hiding Work Stealing", SPAA 2016): a scheduler
// for parallel computations whose threads may suspend on latency-incurring
// operations — I/O, remote procedure calls, user input — without blocking
// the worker executing them.
//
// The module has two halves, both re-exported here:
//
//   - A deterministic simulator of the paper's round-based cost model.
//     Computations are weighted dags (NewDAGBuilder / the Workload
//     generators); RunLHWS, RunWS and RunGreedy execute them on P virtual
//     workers and report rounds, steals, deque counts, and the other
//     quantities the paper's analysis bounds.
//
//   - A real task runtime (NewRuntimeConfig / RunTasks) executing Go code
//     over worker goroutines with wall-clock latencies, in latency-hiding
//     or blocking mode.
//
// See the examples directory for runnable entry points, DESIGN.md for the
// system inventory, and EXPERIMENTS.md for the reproduction of the paper's
// evaluation.
package lhws

import (
	"net"
	"time"

	"lhws/internal/admit"
	"lhws/internal/bufpool"
	"lhws/internal/dag"
	"lhws/internal/experiments"
	"lhws/internal/faultpoint"
	"lhws/internal/io"
	"lhws/internal/runtime"
	"lhws/internal/sched"
	"lhws/internal/workload"
)

// Weighted-dag model (paper §2).
type (
	// Graph is an immutable weighted computation dag.
	Graph = dag.Graph
	// DAGBuilder incrementally constructs a Graph.
	DAGBuilder = dag.Builder
	// VertexID identifies a vertex within a Graph.
	VertexID = dag.VertexID
	// OutEdge is a directed, latency-weighted edge.
	OutEdge = dag.OutEdge
)

// NoVertex is the sentinel for "no vertex".
const NoVertex = dag.None

// NewDAGBuilder returns an empty dag builder.
func NewDAGBuilder() *DAGBuilder { return dag.NewBuilder() }

// Sequence composes two dags serially; weight > 1 models a
// latency-incurring handoff between them.
func Sequence(g1, g2 *Graph, weight int64) *Graph { return dag.Sequence(g1, g2, weight) }

// ParallelDAGs composes dags under a fork tree with a matching join tree.
func ParallelDAGs(gs ...*Graph) *Graph { return dag.ParallelAll(gs...) }

// WithEntryLatency prefixes a dag with a latency-incurring fetch vertex.
func WithEntryLatency(g *Graph, label string, delta int64) *Graph {
	return dag.WithEntryLatency(g, label, delta)
}

// Simulated schedulers (paper §3).
type (
	// SchedOptions configures a simulated execution.
	SchedOptions = sched.Options
	// SchedResult is the outcome of a simulated execution.
	SchedResult = sched.Result
	// SchedStats aggregates counters from one simulated execution.
	SchedStats = sched.Stats
	// StealPolicy selects the steal-victim policy.
	StealPolicy = sched.StealPolicy
)

// Steal policies for RunLHWS.
const (
	// StealRandomDeque is the paper's analyzed policy (§3).
	StealRandomDeque = sched.StealRandomDeque
	// StealWorkerThenDeque is the implementation policy (§6).
	StealWorkerThenDeque = sched.StealWorkerThenDeque
)

// RunLHWS executes a weighted dag with the latency-hiding work-stealing
// scheduler of the paper's Figure 3 on opt.Workers simulated workers.
func RunLHWS(g *Graph, opt SchedOptions) (*SchedResult, error) { return sched.RunLHWS(g, opt) }

// RunWS executes a weighted dag with standard (blocking) work stealing —
// the baseline of the paper's evaluation.
func RunWS(g *Graph, opt SchedOptions) (*SchedResult, error) { return sched.RunWS(g, opt) }

// RunGreedy executes a weighted dag with an offline greedy schedule,
// achieving the Theorem-1 bound of W/P + S rounds.
func RunGreedy(g *Graph, workers int) (*SchedResult, error) { return sched.RunGreedy(g, workers) }

// GreedyBound returns the Theorem-1 bound W/P + S.
func GreedyBound(g *Graph, workers int) int64 { return sched.GreedyBound(g, workers) }

// Workload generators (paper §5 and §6.1).
type (
	// Workload is a generated computation dag plus provenance.
	Workload = workload.Workload
	// MapReduceConfig parameterizes the distributed map-reduce of §5.
	MapReduceConfig = workload.MapReduceConfig
	// ServerConfig parameterizes the server example of §5.
	ServerConfig = workload.ServerConfig
	// PipelineConfig parameterizes the streaming-pipeline workload.
	PipelineConfig = workload.PipelineConfig
	// RandomConfig parameterizes random fork-join dags.
	RandomConfig = workload.RandomConfig
)

// MapReduce builds the §5 distributed map-reduce workload (U = n).
func MapReduce(cfg MapReduceConfig) *Workload { return workload.MapReduce(cfg) }

// Server builds the §5 server workload (U = 1).
func Server(cfg ServerConfig) *Workload { return workload.Server(cfg) }

// Fib builds the latency-free parallel Fibonacci workload (U = 0).
func Fib(n int) *Workload { return workload.Fib(n) }

// Pipeline builds a streaming-pipeline workload.
func Pipeline(cfg PipelineConfig) *Workload { return workload.Pipeline(cfg) }

// RandomDAG builds a structurally valid random fork-join dag.
func RandomDAG(cfg RandomConfig) *Workload { return workload.Random(cfg) }

// Real task runtime (paper §6).
type (
	// RuntimeConfig configures the goroutine-backed task runtime.
	RuntimeConfig = runtime.Config
	// RuntimeStats reports counters from a runtime execution.
	RuntimeStats = runtime.Stats
	// RuntimeMode selects latency-hiding or blocking scheduling.
	RuntimeMode = runtime.Mode
	// StealEvent describes one successful steal for
	// RuntimeConfig.OnSteal (thief, victim, items moved, locality).
	StealEvent = runtime.StealEvent
	// Ctx is a task's handle to the runtime.
	Ctx = runtime.Ctx
	// Future is the completion handle of a spawned task.
	Future = runtime.Future
)

// Value is a Future carrying a typed result; create one with SpawnValue.
type Value[T any] = runtime.Value[T]

// Chan is a task-level message channel whose blocking operations suspend
// the task (latency-hiding mode) instead of the worker.
type Chan[T any] = runtime.Chan[T]

// NewChan returns a channel with the given capacity; capacity < 1 means
// unbounded.
func NewChan[T any](capacity int) *Chan[T] { return runtime.NewChan[T](capacity) }

// For executes body(i) for i in [lo, hi) with fork-join parallelism at the
// given grain; bodies may suspend.
func For(c *Ctx, lo, hi, grain int, body func(*Ctx, int)) {
	runtime.For(c, lo, hi, grain, body)
}

// ParallelMapReduce applies mapper to [lo, hi) in parallel and folds the
// results left-to-right with the associative reduce — the §5 distributed
// map-reduce as a library primitive.
func ParallelMapReduce[T any](c *Ctx, lo, hi int, id T, mapper func(*Ctx, int) T, reduce func(T, T) T) T {
	return runtime.MapReduce(c, lo, hi, id, mapper, reduce)
}

// Runtime modes.
const (
	// LatencyHiding runs the LHWS algorithm on the real runtime.
	LatencyHiding = runtime.LatencyHiding
	// Blocking runs standard blocking work stealing.
	Blocking = runtime.Blocking
)

// RunTasks executes root (and everything it spawns) on a fresh worker pool.
// It returns a typed error when the execution fails — ErrTaskPanic,
// ErrCanceled, ErrDeadline, or a *StallError — after unwinding and
// draining every task; stats are returned even on error.
func RunTasks(cfg RuntimeConfig, root func(*Ctx)) (*RuntimeStats, error) {
	return runtime.Run(cfg, root)
}

// Typed errors from the runtime's resilience layer (see RunTasks).
var (
	// ErrTaskPanic wraps the first panic raised inside a task.
	ErrTaskPanic = runtime.ErrTaskPanic
	// ErrCanceled reports explicit cancellation (Ctx.Cancel or the cancel
	// function of WithCancel/WithDeadline).
	ErrCanceled = runtime.ErrCanceled
	// ErrDeadline reports an elapsed Ctx.WithDeadline or RuntimeConfig.Deadline.
	ErrDeadline = runtime.ErrDeadline
	// ErrStalled reports a watchdog-detected lost wakeup or deadlock;
	// errors carrying it are *StallError diagnostics.
	ErrStalled = runtime.ErrStalled
	// ErrChanClosed reports a Chan closed under a suspended sender.
	ErrChanClosed = runtime.ErrChanClosed
)

// Watchdog diagnostics (RuntimeConfig.StallTimeout).
type (
	// StallError is the structured deadlock / lost-wakeup diagnostic the
	// suspension watchdog returns instead of letting a run hang.
	StallError = runtime.StallError
	// StallWait describes one suspension outstanding at stall time.
	StallWait = runtime.StallWait
)

// Fault injection for chaos testing (RuntimeConfig.Faults).
type (
	// FaultInjector decides, per scheduler fault-point occurrence, whether
	// to inject a fault; construct with NewFaultInjector.
	FaultInjector = faultpoint.Injector
	// FaultRule configures one fault point: Action at probability Rate.
	FaultRule = faultpoint.Rule
	// FaultPoint names a scheduler location where faults can be injected.
	FaultPoint = faultpoint.Point
	// FaultAction is what happens when a fault point fires.
	FaultAction = faultpoint.Action
)

// NewFaultInjector returns an injector with no rules armed, seeded for
// replayable chaos runs; arm points with Set and pass it as
// RuntimeConfig.Faults.
func NewFaultInjector(seed uint64) *FaultInjector { return faultpoint.New(seed) }

// Fault points.
const (
	// FaultSteal is a steal attempt (Fail forces a miss).
	FaultSteal = faultpoint.Steal
	// FaultSuspend is the task-side entry to a suspending operation.
	FaultSuspend = faultpoint.Suspend
	// FaultResumeInject is the wakeup returning a suspended task to its deque.
	FaultResumeInject = faultpoint.ResumeInject
	// FaultChanWakeup is the channel-handoff wakeup.
	FaultChanWakeup = faultpoint.ChanWakeup
	// FaultTaskBody is the entry of a task's user function.
	FaultTaskBody = faultpoint.TaskBody
	// FaultPollComplete is an external I/O completion being delivered to a
	// suspended task (poller readiness, AwaitExternal completion).
	FaultPollComplete = faultpoint.PollComplete
)

// Fault actions.
const (
	// FaultNone leaves the operation untouched.
	FaultNone = faultpoint.None
	// FaultFail reports failure (steal attempts miss).
	FaultFail = faultpoint.Fail
	// FaultDrop swallows a wakeup entirely.
	FaultDrop = faultpoint.Drop
	// FaultDelay defers the operation by FaultRule.Delay.
	FaultDelay = faultpoint.Delay
	// FaultDup delivers a wakeup twice, FaultRule.Delay apart.
	FaultDup = faultpoint.Dup
	// FaultPanic panics at the fault point (task-side points only).
	FaultPanic = faultpoint.Panic
)

// SpawnValue spawns f as a child task returning a typed result handle.
func SpawnValue[T any](c *Ctx, f func(*Ctx) T) *runtime.Value[T] {
	return runtime.SpawnValue(c, f)
}

// Real-latency I/O (DESIGN.md §9): sockets whose Read/Write/Accept/Dial
// suspend the calling task — never its worker — through the same
// heavy-edge protocol as Ctx.Latency, so network waits overlap with
// useful work exactly as the paper's model prescribes.
type (
	// IOConn is a socket with task-suspending Read and Write. Beyond the
	// plain []byte calls it carries the pooled data plane: ReadBuf reads
	// into a pooled IOBuf (zero allocation at steady state), QueueWrite +
	// Flush coalesce a framed reply into one vectored writev, and
	// SetOpTimeout arms a per-operation deadline that fails the op with
	// ErrOpTimeout while leaving the connection usable.
	IOConn = io.Conn
	// IOListener is a listening socket with task-suspending Accept.
	IOListener = io.Listener
	// IOBuf is a pooled reference-counted buffer (see IOConn.ReadBuf).
	// The holder owns one reference; Release returns the buffer to its
	// size-class pool, Retain adds a reference for another holder.
	IOBuf = bufpool.Buf
)

// ErrOpTimeout reports an I/O operation that outran the connection's
// per-op budget (IOConn.SetOpTimeout). It is an ordinary operation
// error, not a cancellation: the task keeps running and the connection
// stays usable.
var ErrOpTimeout = io.ErrOpTimeout

// IODial connects to addr, suspending the task for the handshake.
func IODial(c *Ctx, network, addr string) (*IOConn, error) { return io.Dial(c, network, addr) }

// IOListen opens a listening socket; only Accept suspends.
func IOListen(c *Ctx, network, addr string) (*IOListener, error) {
	return io.Listen(c, network, addr)
}

// IOWrap adopts an existing net.Conn into the task runtime. The conn
// must support deadlines (as all TCP/Unix conns do); a conn whose
// SetDeadline errors is rejected up front, because cancellation and
// shutdown both rely on deadline kicks to interrupt in-flight calls.
func IOWrap(c *Ctx, nc net.Conn) (*IOConn, error) { return io.Wrap(c, nc) }

// AwaitExternal suspends the task until an external completion arrives:
// arm starts the operation and is given a complete callback (callable
// from any goroutine, exactly once); the returned cancel is invoked if
// the task's scope aborts first. This is the generic adapter that turns
// any callback- or channel-shaped API into a heavy edge.
func AwaitExternal[T any](c *Ctx, site string, arm func(complete func(T, error)) (cancel func(error))) (T, error) {
	return runtime.AwaitExternal[T](c, site, arm)
}

// AwaitChan receives from ch, suspending the task instead of the worker.
// The error is ErrChanClosed if ch was closed.
func AwaitChan[T any](c *Ctx, ch <-chan T) (T, error) { return runtime.AwaitChan[T](c, ch) }

// WaitKind classifies what a suspension is waiting for; the watchdog
// reports it in StallWait.
type WaitKind = runtime.WaitKind

// Wait kinds.
const (
	// KindOther is an unclassified suspension.
	KindOther = runtime.KindOther
	// KindTimer waits on a Latency timer.
	KindTimer = runtime.KindTimer
	// KindFuture waits on a task completion (Await).
	KindFuture = runtime.KindFuture
	// KindChan waits on a runtime channel operation.
	KindChan = runtime.KindChan
	// KindFD waits on socket readiness or I/O completion.
	KindFD = runtime.KindFD
	// KindExternal waits on a generic external completion (AwaitExternal).
	KindExternal = runtime.KindExternal
)

// Overload control (DESIGN.md §11): per-request latency targets,
// deadline-aware admission, load shedding, and graceful drain for
// server-shaped workloads built on the runtime and I/O layers.
type (
	// AdmitConfig parameterizes an admission controller: an inflight
	// credit pool plus saturation thresholds for degrade and reject.
	AdmitConfig = admit.Config
	// AdmitController is the deadline-aware admission controller; it
	// also implements IOGate for accept-path backpressure.
	AdmitController = admit.Controller
	// AdmitTicket is one admitted request's handle: consult Degraded /
	// Parallelism for the degrade decision, Bind a scope cancel for
	// drain-time shedding, and Done to release the credit.
	AdmitTicket = admit.Ticket
	// AdmitPolicy is the admission decision attached to a ticket.
	AdmitPolicy = admit.Policy
	// DrainReport summarizes a graceful drain.
	DrainReport = admit.DrainReport
	// RuntimeLoad is one sample of the runtime's saturation state
	// (Ctx.LoadSignal), the input to admission decisions.
	RuntimeLoad = runtime.Load
	// IOGate is the admission valve a Listener consults before pulling
	// connections out of the kernel backlog (IOListener.SetGate).
	IOGate = io.Gate
)

// Admission policies.
const (
	// AdmitFull runs the request at full parallelism.
	AdmitFull = admit.Admitted
	// AdmitDegraded runs the request with inner parallelism shed.
	AdmitDegraded = admit.Degraded
)

// Overload-control errors.
var (
	// ErrOverload reports admission refused because the runtime is
	// saturated (reject-fast).
	ErrOverload = admit.ErrOverload
	// ErrAdmitDraining reports admission refused because the controller
	// is draining for shutdown.
	ErrAdmitDraining = admit.ErrDraining
	// ErrTargetMissed reports a subtree shed because its latency target
	// had already passed (RuntimeConfig.ShedBlownTargets).
	ErrTargetMissed = runtime.ErrTargetMissed
)

// NewAdmitController returns an admission controller for the given
// thresholds; share one per server. Zero-valued thresholds disable
// their checks.
func NewAdmitController(cfg AdmitConfig) *AdmitController { return admit.New(cfg) }

// WithTarget derives a scope carrying a soft latency target d from now:
// deadline-aware deque selection prefers its work, steal gating may
// shed it once the target has passed (unlike WithDeadline, no timer
// fires — a blown target without ShedBlownTargets only marks the task
// late in RuntimeStats.TasksLate).
func WithTarget(c *Ctx, d time.Duration) (*Ctx, func()) { return c.WithTarget(d) }

// Experiment drivers reproducing the paper's evaluation; see EXPERIMENTS.md.
type (
	// Fig11Config parameterizes one panel of Figure 11.
	Fig11Config = experiments.Fig11Config
	// Fig11Result is one reproduced panel of Figure 11.
	Fig11Result = experiments.Fig11Result
)

// Fig11 reproduces one panel of the paper's Figure 11 in the simulator.
func Fig11(cfg Fig11Config) (*Fig11Result, error) { return experiments.Fig11(cfg) }

// ScaledFig11 returns the laptop-scale Figure 11 configuration for the
// given panel latency in milliseconds (500, 50, or 1 in the paper).
func ScaledFig11(deltaMS float64) Fig11Config { return experiments.ScaledFig11(deltaMS) }
