GO ?= go

# Core packages whose hot paths the race/vet gates guard.
CORE := ./internal/deque/... ./internal/runtime/... ./internal/sched/...

.PHONY: all build test race race-core vet lint chaos ci figures clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-detector sweep. The full ./... sweep is the CI gate; the CORE subset
# is the quick local loop.
race:
	$(GO) test -race -count=1 ./...

race-core:
	$(GO) test -race -count=1 $(CORE)

# vet runs go vet plus the scheduler-aware analyzers in cmd/lhws-vet
# (dequeowner, noblock, atomicpair, rngplumb — see DESIGN.md §6).
vet:
	$(GO) vet ./...
	$(GO) run ./cmd/lhws-vet ./...

# lint is the formatting gate: fails if any file needs gofmt.
lint:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# chaos runs the fault-injection suite under the race detector: every
# scheduler fault point (failed steals, dropped/delayed/duplicated
# wakeups, injected panics) at seeded rates, replayed over three fixed
# seeds baked into the tests. Runs must produce correct results or typed
# errors with watchdog diagnostics — never hang (see DESIGN.md §7).
chaos:
	$(GO) test -race -count=1 -run 'TestChaos' -v ./internal/runtime/

# ci mirrors .github/workflows/ci.yml.
ci: build lint vet test race chaos

figures:
	$(GO) run ./cmd/lhws-bench -exp fig11 -svg figures

clean:
	$(GO) clean ./...
