GO ?= go

# Core packages whose hot paths the race/vet gates guard.
CORE := ./internal/deque/... ./internal/runtime/... ./internal/sched/...

.PHONY: all build test race race-core vet lhws-vet lint chaos bench-runtime bench-io bench-io-smoke bench-goodput bench-goodput-smoke bench-steal bench-steal-smoke bench-smoke ci figures clean

all: build

# build compiles both socket backends: the portable rotation dispatcher
# (default) and the epoll readiness poller (lhwsepoll tag, linux only).
build:
	$(GO) build ./...
	$(GO) build -tags lhwsepoll ./...

test:
	$(GO) test ./...

# Race-detector sweep. The full ./... sweep is the CI gate; the CORE subset
# is the quick local loop.
race:
	$(GO) test -race -count=1 ./...
	$(GO) test -race -count=1 -tags lhwsepoll ./internal/io/

race-core:
	$(GO) test -race -count=1 $(CORE)

# vet runs go vet plus the scheduler-aware analyzers in cmd/lhws-vet
# (see DESIGN.md §6 and §10).
vet: lhws-vet
	$(GO) vet ./...

# lhws-vet runs the seven scheduler-aware analyzers (dequeowner, noblock,
# suspendcolor, lockheld, ctxleak, atomicpair, rngplumb) under both build
# configurations, so the epoll notifier is analyzed too.
lhws-vet:
	$(GO) run ./cmd/lhws-vet ./...
	$(GO) run ./cmd/lhws-vet -tags lhwsepoll ./...

# lint is the formatting gate: fails if any file needs gofmt.
lint:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# chaos runs the fault-injection suite under the race detector: every
# scheduler fault point (failed steals, dropped/delayed/duplicated
# wakeups, injected panics) at seeded rates, replayed over three fixed
# seeds baked into the tests. Runs must produce correct results or typed
# errors with watchdog diagnostics — never hang (see DESIGN.md §7).
chaos:
	$(GO) test -race -count=1 -run 'TestChaos' -v ./internal/runtime/ ./internal/io/

# bench-runtime regenerates the hot-path microbenchmark record: the Go
# benchmarks (ns/op + allocs/op) and the BENCH_runtime.json sweep with
# its allocation and baseline-regression checks (see EXPERIMENTS.md
# "Runtime overheads").
bench-runtime:
	$(GO) test -run '^$$' -bench 'SpawnAwaitLadder|WideFanout|StealHeavySkew|ResumeStorm' -benchmem -benchtime 1s ./internal/runtime/
	$(GO) run ./cmd/lhws-bench -exp runtime

# bench-io regenerates the real-socket record (BENCH_io.json): the echo
# comparison (latency-hiding server >= 3x blocking throughput at C=64,
# δ=50ms, bridge pool O(P)) plus the data-plane throughput sweep (pooled
# read path allocation-free at steady state, vectored writes >= 1.15x
# scalar by median paired ratio at C=4096; see EXPERIMENTS.md
# "Real-socket I/O" and "I/O data-plane throughput").
bench-io:
	$(GO) run ./cmd/lhws-bench -exp io

# bench-io-smoke is the CI form of the data-plane sweep, run under both
# socket backends: small load, structural gates only (pooled allocates
# much less than malloc'd, vectoring does not collapse throughput), no
# JSON — CI boxes are too noisy for the full-scale margins.
bench-io-smoke:
	$(GO) run ./cmd/lhws-bench -exp iothrough -iosmoke
	$(GO) run -tags lhwsepoll ./cmd/lhws-bench -exp iothrough -iosmoke

# bench-goodput regenerates the overload-robustness record
# (BENCH_goodput.json): at 4x offered load the shedding server's
# admitted goodput must stay >= 70% of its 1x value while the
# no-shedding baseline collapses below that line (see EXPERIMENTS.md
# "Goodput under overload").
bench-goodput:
	$(GO) run ./cmd/lhws-bench -exp goodput

# bench-goodput-smoke is the CI form: a tiny load (2 workers, 400ms
# rows, 1x/4x only) gated only on "shedding does not collapse"; no JSON
# is written, so the checked-in record stays a quiet-machine artifact.
bench-goodput-smoke:
	$(GO) run ./cmd/lhws-bench -exp goodput -goodsmoke

# bench-steal regenerates the steal-economics record (BENCH_steal.json):
# batched multi-item steals vs the single-item baseline measured in the
# same run, plus the two-tier locality split. Gates: the skewed fan-out
# must average >= 2 items per successful steal and beat its same-run
# single-item baseline on the median paired ratio (see EXPERIMENTS.md
# "Steal economics").
bench-steal:
	$(GO) run ./cmd/lhws-bench -exp steal

# bench-steal-smoke is the CI form: tiny ops, ratio gates only (items
# per steal, locality-tier coverage, counter consistency), no timing
# comparison and no JSON — CI boxes are too noisy for wall-time gates.
bench-steal-smoke:
	$(GO) run ./cmd/lhws-bench -exp steal -stealsmoke

# bench-smoke is the CI form: every benchmark compiles and runs once, and
# the AllocsPerRun gates assert the pooled hot paths stay allocation-free
# at steady state. No timing thresholds — CI boxes are too noisy for ns/op
# gates; the timed record is bench-runtime, run on a quiet machine.
bench-smoke:
	$(GO) test -run '^$$' -bench '.' -benchtime 1x ./internal/runtime/
	$(GO) test -run 'TestAllocs' -count=1 ./internal/runtime/

# ci mirrors .github/workflows/ci.yml.
ci: build lint vet test race chaos bench-smoke bench-io-smoke bench-goodput-smoke bench-steal-smoke

figures:
	$(GO) run ./cmd/lhws-bench -exp fig11 -svg figures

clean:
	$(GO) clean ./...
