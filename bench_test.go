// Benchmarks regenerating the paper's evaluation. One benchmark per
// Figure-11 panel (the paper's only results figure) plus one per validated
// theorem/lemma experiment; see EXPERIMENTS.md for the index and
// cmd/lhws-bench for the full-scale tabular harness.
//
// Each figure benchmark runs a complete scaled panel (LHWS and WS over the
// worker sweep) per iteration and reports the paper's headline quantities
// as custom metrics: the LHWS and WS speedups at the top of the sweep
// (both relative to single-worker WS, the paper's convention) and their
// ratio.
package lhws_test

import (
	"testing"

	"lhws"
	"lhws/internal/experiments"
	"lhws/internal/sched"
	"lhws/internal/workload"
)

// benchFig11 runs one scaled Figure-11 panel per iteration.
func benchFig11(b *testing.B, deltaMS float64) {
	cfg := experiments.ScaledFig11(deltaMS)
	var last *experiments.Fig11Result
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig11(cfg)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	if err := last.Check(); err != nil {
		b.Fatalf("shape check: %v", err)
	}
	top := last.Points[len(last.Points)-1]
	b.ReportMetric(top.LHWSSpeedup, "lhws-speedup@P30")
	b.ReportMetric(top.WSSpeedup, "ws-speedup@P30")
	b.ReportMetric(top.RoundsRatio, "lhws-vs-ws")
}

// BenchmarkFig11_Delta500ms reproduces the left panel of Figure 11
// (δ=500ms): latency-hiding work stealing achieves superlinear
// self-speedup, several times that of standard work stealing.
func BenchmarkFig11_Delta500ms(b *testing.B) { benchFig11(b, 500) }

// BenchmarkFig11_Delta50ms reproduces the middle panel (δ=50ms):
// latency hiding still provides substantial benefit.
func BenchmarkFig11_Delta50ms(b *testing.B) { benchFig11(b, 50) }

// BenchmarkFig11_Delta1ms reproduces the right panel (δ=1ms): with little
// latency to hide, the two schedulers are nearly identical.
func BenchmarkFig11_Delta1ms(b *testing.B) { benchFig11(b, 1) }

// BenchmarkGreedyBound runs the Theorem-1 experiment (greedy schedules
// within W/P + S) per iteration.
func BenchmarkGreedyBound(b *testing.B) {
	var last *experiments.GreedyResult
	for i := 0; i < b.N; i++ {
		r, err := experiments.Greedy(uint64(i))
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	if err := last.Check(); err != nil {
		b.Fatal(err)
	}
	worst := 0.0
	for _, row := range last.Rows {
		if row.Fill > worst {
			worst = row.Fill
		}
	}
	b.ReportMetric(worst, "worst-rounds/bound")
}

// BenchmarkLHWSBound runs the Theorem-2 experiment (rounds within
// O(W/P + SU(1+lgU))) per iteration and reports the worst implied
// constant.
func BenchmarkLHWSBound(b *testing.B) {
	var last *experiments.BoundResult
	for i := 0; i < b.N; i++ {
		r, err := experiments.Bound(uint64(i))
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	if err := last.Check(); err != nil {
		b.Fatal(err)
	}
	worst := 0.0
	for _, row := range last.Rows {
		if row.Ratio > worst {
			worst = row.Ratio
		}
	}
	b.ReportMetric(worst, "worst-implied-const")
}

// BenchmarkLemmaInvariants runs the Lemma 1 / Lemma 7 / Corollary 1 / §5
// suspension-width experiment per iteration.
func BenchmarkLemmaInvariants(b *testing.B) {
	var last *experiments.LemmaResult
	for i := 0; i < b.N; i++ {
		r, err := experiments.Lemmas(uint64(i))
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	if err := last.Check(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkStealPolicyAblation runs the §6 steal-policy comparison per
// iteration and reports the failed-steal rates of both policies.
func BenchmarkStealPolicyAblation(b *testing.B) {
	var last *experiments.StealsResult
	for i := 0; i < b.N; i++ {
		r, err := experiments.Steals(uint64(i))
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	if err := last.Check(); err != nil {
		b.Fatal(err)
	}
	top := last.Rows[len(last.Rows)-1]
	b.ReportMetric(top.RandomRate, "random-fail-rate")
	b.ReportMetric(top.OptRate, "optimized-fail-rate")
}

// BenchmarkVariantAblation runs the §7 design-variant comparison (paper
// vs suspend-whole-deque vs new-deque-per-resume) per iteration and
// reports the round penalty of each prior design.
func BenchmarkVariantAblation(b *testing.B) {
	var last *experiments.VariantsResult
	for i := 0; i < b.N; i++ {
		r, err := experiments.Variants(uint64(i))
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	if err := last.Check(); err != nil {
		b.Fatal(err)
	}
	worstFrozen, worstNew := 0.0, 0.0
	for _, row := range last.Rows {
		if row.FrozenPenalty > worstFrozen {
			worstFrozen = row.FrozenPenalty
		}
		if row.NewDeqPenalty > worstNew {
			worstNew = row.NewDeqPenalty
		}
	}
	b.ReportMetric(worstFrozen, "suspend-deque-penalty")
	b.ReportMetric(worstNew, "resume-new-deque-penalty")
}

// BenchmarkRuntimeMapReduceLH measures the real goroutine runtime on the
// §5 map-reduce in latency-hiding mode (wall-clock supporting experiment).
func BenchmarkRuntimeMapReduceLH(b *testing.B) {
	benchRuntimeMapReduce(b, lhws.LatencyHiding)
}

// BenchmarkRuntimeMapReduceBlocking is the blocking-mode baseline.
func BenchmarkRuntimeMapReduceBlocking(b *testing.B) {
	benchRuntimeMapReduce(b, lhws.Blocking)
}

func benchRuntimeMapReduce(b *testing.B, mode lhws.RuntimeMode) {
	var body func(c *lhws.Ctx, lo, hi int) int64
	body = func(c *lhws.Ctx, lo, hi int) int64 {
		if hi-lo == 1 {
			c.Latency(500_000) // 0.5ms fetch
			return int64(lo)
		}
		mid := (lo + hi) / 2
		right := lhws.SpawnValue(c, func(cc *lhws.Ctx) int64 { return body(cc, mid, hi) })
		return body(c, lo, mid) + right.Await(c)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lhws.RunTasks(lhws.RuntimeConfig{Workers: 2, Mode: mode}, func(c *lhws.Ctx) {
			body(c, 0, 32)
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulatorThroughput measures raw simulator speed: executed dag
// vertices per second under LHWS on the pure-compute fib workload.
func BenchmarkSimulatorThroughput(b *testing.B) {
	g := workload.Fib(18).G
	b.ResetTimer()
	var rounds int64
	for i := 0; i < b.N; i++ {
		r, err := sched.RunLHWS(g, sched.Options{Workers: 4, Seed: uint64(i)})
		if err != nil {
			b.Fatal(err)
		}
		rounds += r.Stats.Rounds
	}
	b.ReportMetric(float64(g.Work()*int64(b.N))/b.Elapsed().Seconds(), "vertices/s")
}

// BenchmarkSuspensionHeavy measures simulator speed on a suspension-heavy
// workload (thousands of simultaneously suspended vertices), the regime
// the paper's §6.1 claims the scheduler handles gracefully.
func BenchmarkSuspensionHeavy(b *testing.B) {
	g := workload.MapReduce(workload.MapReduceConfig{N: 2000, Delta: 500, FibWork: 3}).G
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := sched.RunLHWS(g, sched.Options{Workers: 8, Seed: uint64(i)})
		if err != nil {
			b.Fatal(err)
		}
		if r.Stats.MaxSuspended > 2000 {
			b.Fatal("suspension bound violated")
		}
	}
}
