// Crawler: a latency-bound fan-out workload beyond the paper's examples —
// a web crawl against a real TCP origin server, where every fetch is a
// genuine socket roundtrip (dial, request, δ of server-side latency,
// reply) and discovered links are crawled as spawned tasks. Unlike
// map-reduce, the fan-out is data-dependent (discovered during
// execution), demonstrating that the scheduler needs no a-priori
// knowledge of the dag (§1: "the scheduler works online").
//
// The origin server is a plain goroutine-per-connection TCP server — the
// external world, deliberately outside the task runtime — so the two
// modes below differ only in how the crawler schedules its own waiting:
// the blocking crawler holds a worker inside every dial and read, the
// latency-hiding crawler suspends the task and the worker moves on.
//
//	go run ./examples/crawler [-depth 4] [-fanout 4] [-latency 4ms] [-workers 4]
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"log"
	"net"
	goruntime "runtime"
	"sync/atomic"
	"time"

	"lhws"
)

// Wire protocol: a request is an 8-byte big-endian url; the reply is the
// 8-byte "page contents" (a hash the link generator feeds on).
const wordBytes = 8

// page is a synthetic fetched page: its identity determines its outgoing
// links, so the "site graph" is deterministic without any stored data.
type page struct {
	url   uint64
	depth int
}

// originServer serves the synthetic site over real TCP: one request per
// connection, each reply delayed by the per-fetch latency. Plain
// goroutines throughout — this is the remote site, not the crawler.
func originServer(latency time.Duration) (addr string, shutdown func()) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatalf("origin: %v", err)
	}
	go func() {
		for {
			nc, err := l.Accept()
			if err != nil {
				return // listener closed
			}
			go func(nc net.Conn) {
				defer nc.Close()
				nc.SetDeadline(time.Now().Add(30 * time.Second))
				var req [wordBytes]byte
				for off := 0; off < len(req); {
					n, err := nc.Read(req[off:])
					off += n
					if err != nil {
						return
					}
				}
				time.Sleep(latency) // the site's response time
				h := binary.BigEndian.Uint64(req[:]) * 0x9e3779b97f4a7c15
				var reply [wordBytes]byte
				binary.BigEndian.PutUint64(reply[:], h^(h>>29))
				nc.Write(reply[:])
			}(nc)
		}
	}()
	return l.Addr().String(), func() { l.Close() }
}

// fetch is an HTTP-GET-shaped roundtrip on the task runtime: dial the
// origin, send the url, await the contents. Every step that waits on the
// network suspends the task (or, in blocking mode, holds the worker).
func fetch(c *lhws.Ctx, addr string, url uint64) uint64 {
	cn, err := lhws.IODial(c, "tcp", addr)
	if err != nil {
		log.Fatalf("dial: %v", err)
	}
	defer cn.Close()
	var req [wordBytes]byte
	binary.BigEndian.PutUint64(req[:], url)
	if _, err := cn.Write(c, req[:]); err != nil {
		log.Fatalf("write %d: %v", url, err)
	}
	var reply [wordBytes]byte
	for off := 0; off < len(reply); {
		n, err := cn.Read(c, reply[off:])
		off += n
		if err != nil {
			log.Fatalf("read %d: %v", url, err)
		}
	}
	return binary.BigEndian.Uint64(reply[:])
}

type crawler struct {
	addr   string
	fanout int
	maxD   int
	pages  atomic.Int64
	bytes  atomic.Int64
}

// crawl fetches one page and spawns a crawl of each discovered link,
// awaiting them so the task tree joins back to the root.
func (cr *crawler) crawl(c *lhws.Ctx, p page) {
	contents := fetch(c, cr.addr, p.url)
	cr.pages.Add(1)
	cr.bytes.Add(int64(contents % 40960))
	if p.depth >= cr.maxD {
		return
	}
	var futs []*lhws.Future
	for i := 0; i < cr.fanout; i++ {
		link := page{url: contents + uint64(i)*0x45d9f3b, depth: p.depth + 1}
		futs = append(futs, c.Spawn(func(cc *lhws.Ctx) { cr.crawl(cc, link) }))
	}
	for _, f := range futs {
		f.Await(c)
	}
}

func main() {
	var (
		depth   = flag.Int("depth", 4, "crawl depth")
		fanout  = flag.Int("fanout", 4, "links per page")
		latency = flag.Duration("latency", 4*time.Millisecond, "origin server response latency")
		workers = flag.Int("workers", 4, "worker goroutines")
	)
	flag.Parse()
	if goruntime.GOMAXPROCS(0) < *workers {
		goruntime.GOMAXPROCS(*workers)
	}

	total := 0
	for d, c := 0, 1; d <= *depth; d++ {
		total += c
		c *= *fanout
	}
	fmt.Printf("crawl: depth %d, fanout %d → %d pages over real TCP, δ=%v per fetch, %d workers\n",
		*depth, *fanout, total, *latency, *workers)
	fmt.Printf("serialized latency alone: %v\n\n", time.Duration(total)*(*latency))

	addr, shutdown := originServer(*latency)
	defer shutdown()

	for _, mode := range []lhws.RuntimeMode{lhws.Blocking, lhws.LatencyHiding} {
		cr := &crawler{addr: addr, fanout: *fanout, maxD: *depth}
		st, err := lhws.RunTasks(lhws.RuntimeConfig{Workers: *workers, Mode: mode}, func(c *lhws.Ctx) {
			cr.crawl(c, page{url: 1})
		})
		if err != nil {
			log.Fatal(err)
		}
		if got := cr.pages.Load(); got != int64(total) {
			log.Fatalf("%v: crawled %d pages, want %d", mode, got, total)
		}
		fmt.Printf("%-15s wall %-12v pages %-6d tasks %-6d suspensions %-6d steals %d\n",
			mode.String()+":", st.Wall.Round(time.Millisecond), cr.pages.Load(),
			st.TasksSpawned, st.Suspensions, st.Steals)
	}
	fmt.Println("\nEvery fetch below the frontier overlaps under latency hiding; the")
	fmt.Println("blocking runtime can only keep one fetch per worker in flight.")
}
