// Crawler: a latency-bound fan-out workload beyond the paper's examples —
// a synthetic web crawl where fetching a page incurs wall-clock latency and
// discovered links are crawled as spawned tasks. Unlike map-reduce, the
// fan-out is data-dependent (discovered during execution), demonstrating
// that the scheduler needs no a-priori knowledge of the dag (§1: "the
// scheduler works online").
//
//	go run ./examples/crawler [-depth 4] [-fanout 4] [-latency 4ms] [-workers 4]
package main

import (
	"flag"
	"fmt"
	"log"
	goruntime "runtime"
	"sync/atomic"
	"time"

	"lhws"
)

// page is a synthetic fetched page: its identity determines its outgoing
// links, so the "site graph" is deterministic without any stored data.
type page struct {
	url   uint64
	depth int
}

// fetch simulates an HTTP GET: latency, then the page contents.
func fetch(c *lhws.Ctx, url uint64, latency time.Duration) uint64 {
	c.Latency(latency)
	// "Contents": a hash the link generator feeds on.
	h := url * 0x9e3779b97f4a7c15
	return h ^ (h >> 29)
}

type crawler struct {
	fanout  int
	maxD    int
	latency time.Duration
	pages   atomic.Int64
	bytes   atomic.Int64
}

// crawl fetches one page and spawns a crawl of each discovered link,
// awaiting them so the task tree joins back to the root.
func (cr *crawler) crawl(c *lhws.Ctx, p page) {
	contents := fetch(c, p.url, cr.latency)
	cr.pages.Add(1)
	cr.bytes.Add(int64(contents % 40960))
	if p.depth >= cr.maxD {
		return
	}
	var futs []*lhws.Future
	for i := 0; i < cr.fanout; i++ {
		link := page{url: contents + uint64(i)*0x45d9f3b, depth: p.depth + 1}
		futs = append(futs, c.Spawn(func(cc *lhws.Ctx) { cr.crawl(cc, link) }))
	}
	for _, f := range futs {
		f.Await(c)
	}
}

func main() {
	var (
		depth   = flag.Int("depth", 4, "crawl depth")
		fanout  = flag.Int("fanout", 4, "links per page")
		latency = flag.Duration("latency", 4*time.Millisecond, "per-fetch latency")
		workers = flag.Int("workers", 4, "worker goroutines")
	)
	flag.Parse()
	if goruntime.GOMAXPROCS(0) < *workers {
		goruntime.GOMAXPROCS(*workers)
	}

	total := 0
	for d, c := 0, 1; d <= *depth; d++ {
		total += c
		c *= *fanout
	}
	fmt.Printf("crawl: depth %d, fanout %d → %d pages, δ=%v per fetch, %d workers\n",
		*depth, *fanout, total, *latency, *workers)
	fmt.Printf("serialized latency alone: %v\n\n", time.Duration(total)*(*latency))

	for _, mode := range []lhws.RuntimeMode{lhws.Blocking, lhws.LatencyHiding} {
		cr := &crawler{fanout: *fanout, maxD: *depth, latency: *latency}
		st, err := lhws.RunTasks(lhws.RuntimeConfig{Workers: *workers, Mode: mode}, func(c *lhws.Ctx) {
			cr.crawl(c, page{url: 1})
		})
		if err != nil {
			log.Fatal(err)
		}
		if got := cr.pages.Load(); got != int64(total) {
			log.Fatalf("%v: crawled %d pages, want %d", mode, got, total)
		}
		fmt.Printf("%-15s wall %-12v pages %-6d tasks %-6d suspensions %-6d steals %d\n",
			mode.String()+":", st.Wall.Round(time.Millisecond), cr.pages.Load(),
			st.TasksSpawned, st.Suspensions, st.Steals)
	}
	fmt.Println("\nEvery fetch below the frontier overlaps under latency hiding; the")
	fmt.Println("blocking runtime can only keep one fetch per worker in flight.")
}
