// Pipeline: a streaming ETL pipeline built from tasks and latency-hiding
// channels — fetch, enrich (via a "remote service"), and aggregate — where
// every stage incurs per-item wall-clock latency. Channels are the
// "messaging primitives" the paper's introduction lists among
// latency-incurring operations: a Recv on an empty channel suspends the
// task, never the worker.
//
//	go run ./examples/pipeline [-items 60] [-latency 3ms] [-workers 3]
package main

import (
	"flag"
	"fmt"
	"log"
	goruntime "runtime"
	"time"

	"lhws"
)

type record struct {
	id    int
	value int64
}

func main() {
	var (
		items   = flag.Int("items", 60, "records flowing through the pipeline")
		latency = flag.Duration("latency", 3*time.Millisecond, "per-stage per-item latency")
		workers = flag.Int("workers", 3, "worker goroutines")
	)
	flag.Parse()
	if goruntime.GOMAXPROCS(0) < *workers {
		goruntime.GOMAXPROCS(*workers)
	}

	fmt.Printf("pipeline: %d records × 3 stages × %v latency each, %d workers\n",
		*items, *latency, *workers)
	fmt.Printf("fully serialized: %v; perfectly overlapped: ~%v\n\n",
		time.Duration(3*(*items))*(*latency), time.Duration(*items)*(*latency))

	for _, mode := range []lhws.RuntimeMode{lhws.Blocking, lhws.LatencyHiding} {
		var total int64
		st, err := lhws.RunTasks(lhws.RuntimeConfig{Workers: *workers, Mode: mode}, func(c *lhws.Ctx) {
			fetched := lhws.NewChan[record](8) // bounded: backpressure
			enriched := lhws.NewChan[record](8)

			fetcher := c.Spawn(func(cc *lhws.Ctx) {
				for i := 0; i < *items; i++ {
					cc.Latency(*latency) // read from upstream source
					fetched.Send(cc, record{id: i, value: int64(i)})
				}
			})
			enricher := c.Spawn(func(cc *lhws.Ctx) {
				for i := 0; i < *items; i++ {
					r := fetched.Recv(cc)
					cc.Latency(*latency) // call the enrichment service
					r.value = r.value*3 + 1
					enriched.Send(cc, r)
				}
			})
			// Aggregate stage runs in the root task.
			for i := 0; i < *items; i++ {
				r := enriched.Recv(c)
				c.Latency(*latency) // write to the sink
				total += r.value
			}
			fetcher.Await(c)
			enricher.Await(c)
		})
		if err != nil {
			log.Fatal(err)
		}
		want := int64(0)
		for i := 0; i < *items; i++ {
			want += int64(i)*3 + 1
		}
		if total != want {
			log.Fatalf("%v: total = %d, want %d", mode, total, want)
		}
		fmt.Printf("%-15s wall %-12v suspensions %-5d steals %d\n",
			mode.String()+":", st.Wall.Round(time.Millisecond), st.Suspensions, st.Steals)
	}
	fmt.Println("\nUnder latency hiding the three stages' waits overlap — throughput")
	fmt.Println("approaches one record per stage-latency — while the blocking runtime")
	fmt.Println("needs a worker pinned per in-flight wait.")
}
