// Distributed map-reduce (paper §5, Figure 8) on the real task runtime:
// fetch n values from simulated remote servers (each fetch incurring real
// wall-clock latency), map each through a computation, and reduce with an
// associative operation — comparing the latency-hiding runtime against the
// blocking baseline.
//
//	go run ./examples/mapreduce [-n 200] [-delta 5ms] [-workers 4]
package main

import (
	"flag"
	"fmt"
	"log"
	goruntime "runtime"
	"time"

	"lhws"
)

// getValue simulates fetching element i from a remote server: the request
// takes delta of wall-clock time during which the task suspends (or, in
// blocking mode, stalls its worker).
func getValue(c *lhws.Ctx, i int, delta time.Duration) int64 {
	c.Latency(delta)
	return int64(i)
}

// f is the mapped computation: a few thousand iterations of integer work
// standing in for the paper's fib(30).
func f(x int64) int64 {
	acc := x
	for i := 0; i < 20000; i++ {
		acc += int64(i) ^ (acc >> 3)
	}
	return acc%1000003 + x
}

// mapReduce is Figure 8: recursively split the index range, fork the right
// half, fetch-and-map single elements at the leaves, and combine with g
// (here: addition) on the way up.
func mapReduce(c *lhws.Ctx, lo, hi int, delta time.Duration) int64 {
	if hi-lo == 1 {
		return f(getValue(c, lo, delta))
	}
	mid := (lo + hi) / 2
	right := lhws.SpawnValue(c, func(cc *lhws.Ctx) int64 {
		return mapReduce(cc, mid, hi, delta)
	})
	left := mapReduce(c, lo, mid, delta)
	return left + right.Await(c)
}

func main() {
	var (
		n       = flag.Int("n", 200, "number of remote elements")
		delta   = flag.Duration("delta", 5*time.Millisecond, "per-fetch latency")
		workers = flag.Int("workers", 4, "worker goroutines")
	)
	flag.Parse()
	if goruntime.GOMAXPROCS(0) < *workers {
		goruntime.GOMAXPROCS(*workers)
	}

	fmt.Printf("map-reduce over %d remote values, δ=%v, %d workers\n", *n, *delta, *workers)
	fmt.Printf("serialized latency alone would cost %v\n\n", time.Duration(*n)*(*delta))

	var reference int64
	for _, mode := range []lhws.RuntimeMode{lhws.Blocking, lhws.LatencyHiding} {
		var result int64
		st, err := lhws.RunTasks(lhws.RuntimeConfig{Workers: *workers, Mode: mode}, func(c *lhws.Ctx) {
			result = mapReduce(c, 0, *n, *delta)
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-15s wall %-12v tasks %-5d suspensions %-5d steals %d\n",
			mode.String()+":", st.Wall.Round(time.Millisecond), st.TasksSpawned, st.Suspensions, st.Steals)
		if reference == 0 {
			reference = result
		} else if result != reference {
			log.Fatalf("modes disagree: %d != %d", result, reference)
		}
	}
	fmt.Println("\nSame answer, very different wall time: the latency-hiding runtime")
	fmt.Println("keeps every fetch in flight simultaneously while workers compute.")
}
