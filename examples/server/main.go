// The "server" example (paper §5, Figure 10) on the real task runtime: a
// request loop that awaits inputs arriving one at a time (each arrival
// incurring latency), forks a handler per request, and reduces the handler
// results. Only one receive is outstanding at any moment, so the dag's
// suspension width is 1 — the paper's minimal-U example — yet the handlers
// run in parallel with the waiting.
//
//	go run ./examples/server [-requests 30] [-arrival 3ms] [-workers 4]
package main

import (
	"flag"
	"fmt"
	"log"
	goruntime "runtime"
	"time"

	"lhws"
)

// getInput simulates waiting for the next request: real wall-clock arrival
// latency during which (under latency hiding) the worker runs handlers.
func getInput(c *lhws.Ctx, i, total int, arrival time.Duration) (int, bool) {
	c.Latency(arrival)
	if i >= total {
		return 0, false // the user typed "Done"
	}
	return i * 7, true
}

// handle is f(x): per-request computation, sized comparable to the arrival
// latency so that hiding the wait matters even on one worker.
func handle(x int) int64 {
	acc := int64(x)
	for i := 0; i < 3_000_000; i++ {
		acc += int64(i) ^ (acc >> 2)
	}
	return acc%1000003 + int64(x)
}

// serve is Figure 10 in iterative form: get an input; if there is one,
// fork its handler (the spawned thread) while the server loop itself is
// the continuation — exactly the dag of Figure 9, where the getInput spine
// carries on and each f(x) hangs off it. Because the loop continues
// immediately into the next getInput, the arrival wait overlaps with the
// pending handlers under latency hiding. Results are combined with g
// (addition) at the end, as the recursive joins would.
func serve(c *lhws.Ctx, total int, arrival time.Duration) int64 {
	var handlers []*lhws.Value[int64]
	for i := 0; ; i++ {
		input, ok := getInput(c, i, total, arrival)
		if !ok {
			break
		}
		handlers = append(handlers, lhws.SpawnValue(c, func(cc *lhws.Ctx) int64 {
			return handle(input)
		}))
	}
	var sum int64
	for _, h := range handlers {
		sum += h.Await(c)
	}
	return sum
}

func main() {
	var (
		requests = flag.Int("requests", 20, "requests before shutdown")
		arrival  = flag.Duration("arrival", 4*time.Millisecond, "request arrival latency")
		workers  = flag.Int("workers", 1, "worker goroutines")
	)
	flag.Parse()
	if goruntime.GOMAXPROCS(0) < *workers {
		goruntime.GOMAXPROCS(*workers)
	}

	fmt.Printf("server: %d requests arriving every %v, %d worker(s)\n", *requests, *arrival, *workers)
	fmt.Printf("arrival waits alone: %v; handler compute per request: a few ms\n\n",
		time.Duration(*requests)*(*arrival))

	var reference int64
	for _, mode := range []lhws.RuntimeMode{lhws.Blocking, lhws.LatencyHiding} {
		var result int64
		st, err := lhws.RunTasks(lhws.RuntimeConfig{Workers: *workers, Mode: mode}, func(c *lhws.Ctx) {
			result = serve(c, *requests, *arrival)
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-15s wall %-12v suspensions %-4d max deques/worker %d\n",
			mode.String()+":", st.Wall.Round(time.Millisecond), st.Suspensions, st.MaxDequesPerWorker)
		if reference == 0 {
			reference = result
		} else if result != reference {
			log.Fatalf("modes disagree: %d != %d", result, reference)
		}
	}
	fmt.Println("\nThe blocking server alternates wait, handle, wait, handle — paying")
	fmt.Println("arrival latency plus compute. The latency-hiding server computes")
	fmt.Println("handlers during the waits, and with U = 1 needs at most two deques")
	fmt.Println("per worker (Lemma 7).")
}
