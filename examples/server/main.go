// The "server" example (paper §5, Figure 10) on the real task runtime: a
// request loop that awaits inputs arriving one at a time (each arrival
// incurring latency), forks a handler per request, and reduces the handler
// results. Only one receive is outstanding at any moment, so the dag's
// suspension width is 1 — the paper's minimal-U example — yet the handlers
// run in parallel with the waiting.
//
// On top of the Figure 10 shape, each request runs under a per-request
// deadline (Ctx.WithDeadline): handlers whose simulated backend is slow
// are canceled mid-flight and surface lhws.ErrDeadline from AwaitErr as a
// structured per-request outcome, while fast requests complete normally —
// the server answers every request, on time or with a typed timeout,
// instead of letting one slow backend stall the batch.
//
//	go run ./examples/server [-requests 30] [-arrival 3ms] [-workers 4]
//	    [-deadline 25ms] [-slowevery 5]
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	goruntime "runtime"
	"time"

	"lhws"
)

// getInput simulates waiting for the next request: real wall-clock arrival
// latency during which (under latency hiding) the worker runs handlers.
func getInput(c *lhws.Ctx, i, total int, arrival time.Duration) (int, bool) {
	c.Latency(arrival)
	if i >= total {
		return 0, false // the user typed "Done"
	}
	return i * 7, true
}

// compute is f(x): per-request computation, sized comparable to the
// arrival latency so that hiding the wait matters even on one worker.
func compute(x int) int64 {
	acc := int64(x)
	for i := 0; i < 3_000_000; i++ {
		acc += int64(i) ^ (acc >> 2)
	}
	return acc%1000003 + int64(x)
}

// handle serves one request: a backend fetch (latency-incurring, staged so
// a deadline can interrupt between stages even in blocking mode) followed
// by the f(x) compute. Slow requests model a degraded backend: their
// staged fetch far exceeds any reasonable deadline.
func handle(cc *lhws.Ctx, x int, slow bool) int64 {
	stages, stage := 1, time.Millisecond
	if slow {
		stages, stage = 4, 15*time.Millisecond
	}
	for s := 0; s < stages; s++ {
		cc.Latency(stage) // checkpoint: a fired deadline unwinds here
	}
	return compute(x)
}

// outcome is one request's structured result.
type outcome struct {
	input int
	slow  bool
	res   *lhws.Value[int64]
	done  func()
}

// serve is Figure 10 in iterative form: get an input; if there is one,
// fork its handler (the spawned thread) under a per-request deadline
// while the server loop itself is the continuation — the dag of Figure 9,
// where the getInput spine carries on and each f(x) hangs off it. The
// joins then collect structured results: a sum over the requests that
// made their deadline and a count of typed timeouts.
func serve(c *lhws.Ctx, total, slowEvery int, arrival, deadline time.Duration) (sum int64, ok, timedOut int) {
	var pending []outcome
	for i := 0; ; i++ {
		input, more := getInput(c, i, total, arrival)
		if !more {
			break
		}
		slow := slowEvery > 0 && i%slowEvery == slowEvery-1
		hc, cancel := c.WithDeadline(deadline)
		res := lhws.SpawnValue(hc, func(cc *lhws.Ctx) int64 {
			return handle(cc, input, slow)
		})
		pending = append(pending, outcome{input: input, slow: slow, res: res, done: cancel})
	}
	for _, p := range pending {
		v, err := p.res.AwaitErr(c) // join via the server's own ctx, not hc
		p.done()
		switch {
		case err == nil:
			sum += v
			ok++
		case errors.Is(err, lhws.ErrDeadline):
			timedOut++
		default:
			log.Fatalf("request %d: unexpected error: %v", p.input, err)
		}
	}
	return sum, ok, timedOut
}

func main() {
	var (
		requests  = flag.Int("requests", 20, "requests before shutdown")
		arrival   = flag.Duration("arrival", 4*time.Millisecond, "request arrival latency")
		workers   = flag.Int("workers", 1, "worker goroutines")
		deadline  = flag.Duration("deadline", 25*time.Millisecond, "per-request deadline")
		slowEvery = flag.Int("slowevery", 5, "every Nth request hits a slow backend (0 = never)")
	)
	flag.Parse()
	if goruntime.GOMAXPROCS(0) < *workers {
		goruntime.GOMAXPROCS(*workers)
	}

	slowCount := 0
	if *slowEvery > 0 {
		slowCount = *requests / *slowEvery
	}
	fmt.Printf("server: %d requests arriving every %v, %d worker(s)\n", *requests, *arrival, *workers)
	fmt.Printf("per-request deadline %v; %d request(s) hit a slow backend and should time out\n\n",
		*deadline, slowCount)

	for _, mode := range []lhws.RuntimeMode{lhws.Blocking, lhws.LatencyHiding} {
		var sum int64
		var ok, timedOut int
		st, err := lhws.RunTasks(lhws.RuntimeConfig{Workers: *workers, Mode: mode}, func(c *lhws.Ctx) {
			sum, ok, timedOut = serve(c, *requests, *slowEvery, *arrival, *deadline)
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-15s wall %-12v ok %-3d timeout %-3d sum %-8d suspensions %-4d max deques/worker %d\n",
			mode.String()+":", st.Wall.Round(time.Millisecond), ok, timedOut, sum,
			st.Suspensions, st.MaxDequesPerWorker)
		if ok+timedOut != *requests {
			log.Fatalf("lost requests: %d ok + %d timeout != %d", ok, timedOut, *requests)
		}
	}
	fmt.Println("\nThe blocking server alternates wait, handle, wait, handle — paying")
	fmt.Println("arrival latency plus compute, so queueing delay counts against each")
	fmt.Println("request's deadline and fast requests can time out behind slow ones.")
	fmt.Println("The latency-hiding server computes handlers during the waits (at")
	fmt.Println("most two deques per worker with U = 1, Lemma 7) and makes more")
	fmt.Println("deadlines; either way a slow backend surfaces as a typed")
	fmt.Println("ErrDeadline timeout instead of stalling the whole batch.")
}
