// The "server" example (paper §5, Figure 10) on real sockets: requests
// arrive over TCP, the accept loop awaits them one at a time (each
// arrival a genuine heavy edge), forks a handler per request, and the
// handlers answer on their own connections. Only one Accept is
// outstanding at any moment, so the dag's suspension width is 1 — the
// paper's minimal-U example — yet the handlers run in parallel with the
// waiting.
//
// On top of the Figure 10 shape, the server runs the full overload
// stack (DESIGN.md §11). Each request runs under a per-request deadline
// (Ctx.WithDeadline), which also stamps the subtree with a latency
// target: handlers whose simulated backend is slow are canceled
// mid-flight — by the deadline timer (lhws.ErrDeadline) or, with
// ShedBlownTargets, by a thief refusing to pull workers into a subtree
// whose target has already passed (lhws.ErrTargetMissed) — and answer
// with a typed timeout/shed reply while fast requests complete
// normally. An admission controller fronts the handlers: past its
// saturation threshold requests are rejected fast with a typed reply
// instead of queueing into a blown deadline, and in latency-hiding mode
// the same controller gates the accept loop, parking the acceptor (a
// task, not a worker) so excess connections wait in the kernel backlog.
// A graceful drain closes intake at the end and accounts for every
// admitted request.
//
// The clients are plain goroutines dialing over loopback: the external
// world, deliberately outside the task runtime, so that the comparison
// below measures only how the server schedules its own waiting.
//
//	go run ./examples/server [-requests 20] [-arrival 4ms] [-workers 1]
//	    [-deadline 25ms] [-slowevery 5] [-inflight 8] [-rejectat 16]
package main

import (
	"encoding/binary"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	goruntime "runtime"
	"sync"
	"sync/atomic"
	"time"

	"lhws"
	"lhws/internal/trace"
)

// Wire protocol: a request is a 4-byte big-endian id; a reply is one
// status byte followed by an 8-byte value (zero unless statusOK).
const (
	reqBytes       = 4
	replyBytes     = 1 + 8
	statusOK       = 0
	statusTimeout  = 1
	statusRejected = 2
	statusShed     = 3
)

// compute is f(x): per-request computation, sized comparable to the
// arrival spacing so that hiding the waits matters even on one worker.
func compute(x int) int64 {
	acc := int64(x)
	for i := 0; i < 3_000_000; i++ {
		acc += int64(i) ^ (acc >> 2)
	}
	return acc%1000003 + int64(x)
}

// handle serves one request: a backend fetch (latency-incurring, staged
// so a deadline can interrupt between stages even in blocking mode)
// followed by the f(x) compute. Slow requests model a degraded backend:
// their staged fetch far exceeds any reasonable deadline.
func handle(cc *lhws.Ctx, x int, slow bool) int64 {
	stages, stage := 1, time.Millisecond
	if slow {
		stages, stage = 4, 15*time.Millisecond
	}
	for s := 0; s < stages; s++ {
		cc.Latency(stage) // checkpoint: a fired deadline unwinds here
	}
	return compute(x)
}

// tally aggregates per-request outcomes across handler tasks.
type tally struct {
	sum      atomic.Int64
	ok       atomic.Int64
	timedOut atomic.Int64
	rejected atomic.Int64
	shed     atomic.Int64
	sent     atomic.Int64 // reply bytes flushed to clients
}

// serveConn answers the single request carried by cn: read x, take the
// admission decision, run the handler under what remains of the
// per-request deadline, and reply typed — result, timeout, shed, or
// rejected. The deadline clock started at Accept, so time a queued
// handler spends waiting for a worker counts against it — that is
// exactly the cost the blocking mode pays. The reply is written from
// the handler's own ctx, not the deadline scope, so a canceled request
// still gets its answer.
func serveConn(h *lhws.Ctx, cn *lhws.IOConn, ctl *lhws.AdmitController,
	arrived time.Time, slowEvery int, deadline time.Duration, tl *tally) {
	defer cn.Close()
	var req [reqBytes]byte
	for off := 0; off < len(req); {
		n, err := cn.Read(h, req[off:])
		off += n
		if err != nil {
			log.Fatalf("read request: %v", err)
		}
	}
	x := int(binary.BigEndian.Uint32(req[:]))
	slow := slowEvery > 0 && x%slowEvery == slowEvery-1

	// Replies go out vectored: the status byte and the value field are
	// queued as separate fragments and flushed as one writev, the same
	// frame-assembly shape a real server uses for header + body.
	var reply [replyBytes]byte
	sendReply := func() {
		cn.QueueWrite(reply[:1])
		cn.QueueWrite(reply[1:])
		n, werr := cn.Flush(h)
		if werr != nil {
			log.Fatalf("write reply %d: %v", x, werr)
		}
		tl.sent.Add(int64(n))
	}
	tk, aerr := ctl.Admit(h)
	if aerr != nil {
		// Reject fast: one frame of work instead of a blown deadline.
		reply[0] = statusRejected
		tl.rejected.Add(1)
		sendReply()
		return
	}
	defer tk.Done()

	hc, cancel := h.WithDeadline(deadline - time.Since(arrived))
	defer cancel()
	tk.Bind(cancel) // a drain may shed this request through its scope
	res := lhws.SpawnValue(hc, func(cc *lhws.Ctx) int64 {
		return handle(cc, x, slow)
	})
	v, err := res.AwaitErr(h) // join via the handler's own ctx, not hc

	switch {
	case err == nil:
		reply[0] = statusOK
		binary.BigEndian.PutUint64(reply[1:], uint64(v))
		tl.sum.Add(v)
		tl.ok.Add(1)
	case errors.Is(err, lhws.ErrDeadline):
		reply[0] = statusTimeout
		tl.timedOut.Add(1)
	case errors.Is(err, lhws.ErrTargetMissed), errors.Is(err, lhws.ErrCanceled):
		// Shed: a thief refused the blown-target subtree, or a drain
		// canceled the bound scope.
		reply[0] = statusShed
		tl.shed.Add(1)
	default:
		log.Fatalf("request %d: unexpected error: %v", x, err)
	}
	sendReply()
}

// serve is Figure 10 with a real socket as the input stream: accept a
// connection (the latency-incurring getInput); fork its handler (the
// spawned thread) while the accept spine itself is the continuation —
// the dag of Figure 9, where the Accept spine carries on and each f(x)
// hangs off it. After the last arrival the spine joins every handler
// and drains the admission controller.
func serve(c *lhws.Ctx, l *lhws.IOListener, ctl *lhws.AdmitController,
	total, slowEvery int, deadline time.Duration, tl *tally) *lhws.DrainReport {
	var futs []*lhws.Future
	for i := 0; i < total; i++ {
		cn, err := l.Accept(c)
		if err != nil {
			log.Fatalf("accept: %v", err)
		}
		arrived := time.Now()
		futs = append(futs, c.Spawn(func(h *lhws.Ctx) {
			serveConn(h, cn, ctl, arrived, slowEvery, deadline, tl)
		}))
	}
	for _, f := range futs {
		f.Await(c)
	}
	return ctl.Drain(c, deadline)
}

// client is one plain-goroutine user: dial, send one request, read the
// reply. Returns the status byte.
func client(addr string, id int) (byte, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return 0, err
	}
	defer nc.Close()
	nc.SetDeadline(time.Now().Add(30 * time.Second))
	var req [reqBytes]byte
	binary.BigEndian.PutUint32(req[:], uint32(id))
	if _, err := nc.Write(req[:]); err != nil {
		return 0, err
	}
	var reply [replyBytes]byte
	for off := 0; off < len(reply); {
		n, err := nc.Read(reply[off:])
		off += n
		if err != nil {
			return 0, err
		}
	}
	return reply[0], nil
}

func main() {
	var (
		requests  = flag.Int("requests", 20, "requests before shutdown")
		arrival   = flag.Duration("arrival", 4*time.Millisecond, "spacing between client arrivals")
		workers   = flag.Int("workers", 1, "worker goroutines")
		deadline  = flag.Duration("deadline", 25*time.Millisecond, "per-request deadline (and latency target)")
		slowEvery = flag.Int("slowevery", 5, "every Nth request hits a slow backend (0 = never)")
		inflight  = flag.Int("inflight", 8, "admission credit pool (0 = uncapped)")
		rejectAt  = flag.Float64("rejectat", 16, "saturation at which admission rejects fast (0 = never)")
	)
	flag.Parse()
	if goruntime.GOMAXPROCS(0) < *workers {
		goruntime.GOMAXPROCS(*workers)
	}

	slowCount := 0
	if *slowEvery > 0 {
		slowCount = *requests / *slowEvery
	}
	fmt.Printf("server: %d TCP requests arriving every %v, %d worker(s)\n", *requests, *arrival, *workers)
	fmt.Printf("per-request deadline %v; %d request(s) hit a slow backend and should not complete on time\n\n",
		*deadline, slowCount)

	for _, mode := range []lhws.RuntimeMode{lhws.Blocking, lhws.LatencyHiding} {
		var tl tally
		var clientDegraded atomic.Int64

		addrCh := make(chan string, 1)
		var wg sync.WaitGroup
		wg.Add(1)
		go func() { // the outside world: staggered client arrivals
			defer wg.Done()
			addr := <-addrCh
			var cwg sync.WaitGroup
			for i := 0; i < *requests; i++ {
				cwg.Add(1)
				go func(id int) {
					defer cwg.Done()
					status, err := client(addr, id)
					if err != nil {
						log.Fatalf("client %d: %v", id, err)
					}
					if status != statusOK {
						clientDegraded.Add(1)
					}
				}(i)
				time.Sleep(*arrival)
			}
			cwg.Wait()
		}()

		var drain *lhws.DrainReport
		// The steal log taps the runtime's steal event stream so the
		// summary can report locality and batching ratios per mode.
		slog := trace.NewStealLog(*workers)
		cfg := lhws.RuntimeConfig{Workers: *workers, Mode: mode, ShedBlownTargets: true,
			OnSteal: func(ev lhws.StealEvent) {
				slog.Record(ev.Thief, ev.Victim, ev.Items, ev.Local)
			}}
		var ms0 goruntime.MemStats
		goruntime.ReadMemStats(&ms0)
		st, err := lhws.RunTasks(cfg, func(c *lhws.Ctx) {
			l, lerr := lhws.IOListen(c, "tcp", "127.0.0.1:0")
			if lerr != nil {
				log.Fatalf("listen: %v", lerr)
			}
			defer l.Close()
			ctl := lhws.NewAdmitController(lhws.AdmitConfig{
				MaxInflight: *inflight,
				RejectAt:    *rejectAt,
			})
			if mode == lhws.LatencyHiding {
				// Accept-gate backpressure parks the accepting *task*;
				// in blocking mode that would park the worker itself,
				// so the gate stays latency-hiding-only.
				l.SetGate(ctl)
			}
			addrCh <- l.Addr().String()
			drain = serve(c, l, ctl, *requests, *slowEvery, *deadline, &tl)
		})
		if err != nil {
			log.Fatal(err)
		}
		var ms1 goruntime.MemStats
		goruntime.ReadMemStats(&ms1)
		wg.Wait()

		ok, timedOut := tl.ok.Load(), tl.timedOut.Load()
		rejected, shed := tl.rejected.Load(), tl.shed.Load()
		fmt.Printf("%-15s wall %-10v ok %-3d timeout %-3d rejected %-3d shed %-3d late %-3d target-cancels %-3d sum %d\n",
			mode.String()+":", st.Wall.Round(time.Millisecond), ok, timedOut, rejected, shed,
			st.TasksLate, st.TargetCancels, tl.sum.Load())
		fmt.Printf("%-15s data plane: %.1f KB/s out (vectored replies), %.0f allocs/req\n",
			"", float64(tl.sent.Load())/st.Wall.Seconds()/1024,
			float64(ms1.Mallocs-ms0.Mallocs)/float64(*requests))
		fmt.Printf("%-15s drain: completed %d, canceled %d, remaining %d in %v\n",
			"", drain.Completed, drain.Canceled, drain.Remaining, drain.Waited.Round(time.Millisecond))
		if tot := slog.Total(); tot.Steals > 0 {
			fmt.Printf("%-15s steals: %d moving %d items (%.2f items/steal), %.0f%% local\n",
				"", tot.Steals, tot.Items, tot.MeanBatch(), 100*tot.LocalityRatio())
		}
		if ok+timedOut+rejected+shed != int64(*requests) {
			log.Fatalf("lost requests: %d ok + %d timeout + %d rejected + %d shed != %d",
				ok, timedOut, rejected, shed, *requests)
		}
		if clientDegraded.Load() != timedOut+rejected+shed {
			log.Fatalf("client-side degraded replies %d disagree with server-side %d",
				clientDegraded.Load(), timedOut+rejected+shed)
		}
		if drain.Remaining != 0 {
			log.Fatalf("drain left %d requests in flight", drain.Remaining)
		}
	}
	fmt.Println("\nThe blocking server holds its worker inside every pending Accept,")
	fmt.Println("Read and backend wait, so it alternates wait, handle, wait, handle —")
	fmt.Println("paying arrival latency plus compute in sequence. The latency-hiding")
	fmt.Println("server suspends the task instead and computes handlers during the")
	fmt.Println("waits (at most two deques per worker with U = 1, Lemma 7). Either")
	fmt.Println("way every request ends typed — on time, timed out, shed, or rejected")
	fmt.Println("fast at admission — and the drain accounts for all admitted work;")
	fmt.Println("the deadline clock starts at Accept, so a slow backend surfaces as")
	fmt.Println("a wire reply instead of stalling the batch.")
}
