// Quickstart: build the paper's Figure-1 dag by hand, compute its metrics,
// and run it under the latency-hiding scheduler and the blocking baseline.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"lhws"
)

func main() {
	// The Figure-1 program: fork two threads; the right thread reads an
	// integer from the user (latency δ) and doubles it; the left computes
	// 6*7; the join adds the results.
	const delta = 100

	b := lhws.NewDAGBuilder()
	fork := b.Vertex("fork")
	mul := b.Vertex("y=6*7")    // left child: the continuation
	input := b.Vertex("input")  // right child: the spawned thread
	double := b.Vertex("x=2*x") // ready δ steps after input executes
	add := b.Vertex("x+y")
	b.Light(fork, mul)
	b.Light(fork, input)
	b.Heavy(input, double, delta)
	b.Light(mul, add)
	b.Light(double, add)
	g := b.MustGraph()

	fmt.Printf("dag: %s\n", g.Summary())
	fmt.Printf("critical path: %v\n\n", g.CriticalPath())

	for _, p := range []int{1, 2} {
		lh, err := lhws.RunLHWS(g, lhws.SchedOptions{Workers: p, Seed: 1})
		if err != nil {
			log.Fatal(err)
		}
		ws, err := lhws.RunWS(g, lhws.SchedOptions{Workers: p, Seed: 1})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("P=%d: latency-hiding %4d rounds   blocking %4d rounds\n",
			p, lh.Stats.Rounds, ws.Stats.Rounds)
	}

	fmt.Println("\nBoth schedulers must wait for the input's latency (it is on the")
	fmt.Println("critical path), so on this tiny dag the round counts are similar —")
	fmt.Println("the difference appears when other work can fill the wait, e.g.:")

	// The §5 distributed map-reduce: 64 remote fetches, each with latency
	// delta, each feeding a small computation. LHWS overlaps all fetches.
	w := lhws.MapReduce(lhws.MapReduceConfig{N: 64, Delta: delta, FibWork: 4})
	fmt.Printf("\nworkload: %s\n", w)
	base, err := lhws.RunWS(w.G, lhws.SchedOptions{Workers: 1, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range []int{1, 2, 4} {
		lh, err := lhws.RunLHWS(w.G, lhws.SchedOptions{Workers: p, Seed: 1})
		if err != nil {
			log.Fatal(err)
		}
		ws, err := lhws.RunWS(w.G, lhws.SchedOptions{Workers: p, Seed: 1})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("P=%d: LHWS %6d rounds (speedup %5.2f)   WS %6d rounds (speedup %5.2f)\n",
			p, lh.Stats.Rounds, lh.Speedup(base.Stats.Rounds),
			ws.Stats.Rounds, ws.Speedup(base.Stats.Rounds))
	}
}
