package lhws_test

import (
	"errors"
	"os"
	goruntime "runtime"
	"testing"
	"time"

	"lhws"
)

func TestMain(m *testing.M) {
	if goruntime.GOMAXPROCS(0) < 4 {
		goruntime.GOMAXPROCS(4)
	}
	os.Exit(m.Run())
}

// buildFigure1 builds the paper's Figure-1 dag through the public facade.
func buildFigure1(delta int64) *lhws.Graph {
	b := lhws.NewDAGBuilder()
	fork := b.Vertex("fork")
	mul := b.Vertex("mul")
	input := b.Vertex("input")
	double := b.Vertex("double")
	add := b.Vertex("add")
	b.Light(fork, mul)
	b.Light(fork, input)
	b.Heavy(input, double, delta)
	b.Light(mul, add)
	b.Light(double, add)
	return b.MustGraph()
}

func TestPublicDAGMetrics(t *testing.T) {
	g := buildFigure1(10)
	if g.Work() != 5 || g.Span() != 13 || g.SuspensionWidth() != 1 {
		t.Fatalf("metrics: W=%d S=%d U=%d", g.Work(), g.Span(), g.SuspensionWidth())
	}
}

func TestPublicSchedulers(t *testing.T) {
	g := buildFigure1(10)
	lh, err := lhws.RunLHWS(g, lhws.SchedOptions{Workers: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	ws, err := lhws.RunWS(g, lhws.SchedOptions{Workers: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	gr, err := lhws.RunGreedy(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	for name, r := range map[string]*lhws.SchedResult{"lhws": lh, "ws": ws, "greedy": gr} {
		if r.Stats.UserWork != g.Work() {
			t.Errorf("%s: executed %d of %d vertices", name, r.Stats.UserWork, g.Work())
		}
	}
	if gr.Stats.Rounds > lhws.GreedyBound(g, 2) {
		t.Errorf("greedy exceeded Theorem-1 bound")
	}
}

func TestPublicWorkloads(t *testing.T) {
	cases := []*lhws.Workload{
		lhws.MapReduce(lhws.MapReduceConfig{N: 8, Delta: 10, FibWork: 3}),
		lhws.Server(lhws.ServerConfig{Requests: 4, Delta: 10, FibWork: 3}),
		lhws.Fib(8),
		lhws.Pipeline(lhws.PipelineConfig{Items: 3, Stages: 2, StageWork: 2, Delta: 5}),
		lhws.RandomDAG(lhws.RandomConfig{Seed: 1, TargetVertices: 40, PHeavy: 0.3, MaxDelta: 9}),
	}
	for _, w := range cases {
		if err := w.G.Validate(); err != nil {
			t.Errorf("%s: %v", w.Name, err)
		}
		if _, err := lhws.RunLHWS(w.G, lhws.SchedOptions{Workers: 3, Seed: 2}); err != nil {
			t.Errorf("%s: %v", w.Name, err)
		}
	}
}

func TestPublicStealPolicies(t *testing.T) {
	g := lhws.MapReduce(lhws.MapReduceConfig{N: 16, Delta: 20, FibWork: 3}).G
	for _, p := range []lhws.StealPolicy{lhws.StealRandomDeque, lhws.StealWorkerThenDeque} {
		if _, err := lhws.RunLHWS(g, lhws.SchedOptions{Workers: 4, Seed: 3, Policy: p}); err != nil {
			t.Errorf("policy %v: %v", p, err)
		}
	}
}

func TestPublicRuntime(t *testing.T) {
	for _, mode := range []lhws.RuntimeMode{lhws.LatencyHiding, lhws.Blocking} {
		var sum int64
		st, err := lhws.RunTasks(lhws.RuntimeConfig{Workers: 2, Mode: mode}, func(c *lhws.Ctx) {
			v := lhws.SpawnValue(c, func(cc *lhws.Ctx) int64 {
				cc.Latency(time.Millisecond)
				return 21
			})
			sum = 21 + v.Await(c)
		})
		if err != nil {
			t.Fatal(err)
		}
		if sum != 42 {
			t.Fatalf("%v: sum = %d", mode, sum)
		}
		if st.TasksSpawned != 2 {
			t.Errorf("%v: spawned %d tasks, want 2", mode, st.TasksSpawned)
		}
	}
}

func TestPublicChan(t *testing.T) {
	var got []int
	_, err := lhws.RunTasks(lhws.RuntimeConfig{Workers: 2, Mode: lhws.LatencyHiding}, func(c *lhws.Ctx) {
		ch := lhws.NewChan[int](4)
		f := c.Spawn(func(cc *lhws.Ctx) {
			for i := 0; i < 10; i++ {
				ch.Send(cc, i)
			}
		})
		for i := 0; i < 10; i++ {
			got = append(got, ch.Recv(c))
		}
		f.Await(c)
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("got[%d] = %d", i, v)
		}
	}
}

func TestPublicFig11Driver(t *testing.T) {
	cfg := lhws.Fig11Config{N: 32, FibWork: 4, DeltaMS: 500, Workers: []int{1, 4}, Seed: 1}
	r, err := lhws.Fig11(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != 2 {
		t.Fatalf("points = %d", len(r.Points))
	}
	if r.Points[1].RoundsRatio <= 1 {
		t.Errorf("LHWS not ahead at δ=500ms: ratio %.2f", r.Points[1].RoundsRatio)
	}
	scaled := lhws.ScaledFig11(50)
	if scaled.N == 0 || scaled.DeltaMS != 50 {
		t.Errorf("ScaledFig11 misconfigured: %+v", scaled)
	}
}

func TestPublicVariantsExposed(t *testing.T) {
	g := lhws.Server(lhws.ServerConfig{Requests: 5, Delta: 10, FibWork: 2}).G
	if _, err := lhws.RunLHWS(g, lhws.SchedOptions{Workers: 2, Seed: 1, CheckInvariants: true}); err != nil {
		t.Fatal(err)
	}
}

func TestPublicDAGCombinators(t *testing.T) {
	b1 := lhws.NewDAGBuilder()
	b1.Vertex("a")
	g1 := b1.MustGraph()
	b2 := lhws.NewDAGBuilder()
	b2.Vertex("b")
	g2 := b2.MustGraph()

	seq := lhws.Sequence(g1, g2, 5)
	if seq.Work() != 2 || seq.Span() != 6 || seq.SuspensionWidth() != 1 {
		t.Fatalf("Sequence: W=%d S=%d U=%d", seq.Work(), seq.Span(), seq.SuspensionWidth())
	}
	par := lhws.ParallelDAGs(g1, g2, seq)
	if err := par.Validate(); err != nil {
		t.Fatal(err)
	}
	// The entry fetch completes before anything inside par can run, so its
	// heavy edge never overlaps seq's: U stays 1.
	fetch := lhws.WithEntryLatency(par, "get", 9)
	if fetch.Label(fetch.Root()) != "get" || fetch.SuspensionWidth() != 1 {
		t.Fatalf("WithEntryLatency: label=%q U=%d", fetch.Label(fetch.Root()), fetch.SuspensionWidth())
	}
	if _, err := lhws.RunLHWS(fetch, lhws.SchedOptions{Workers: 2, Seed: 1, CheckInvariants: true}); err != nil {
		t.Fatal(err)
	}
}

func TestPublicParallelFor(t *testing.T) {
	var sum int64
	_, err := lhws.RunTasks(lhws.RuntimeConfig{Workers: 2, Mode: lhws.LatencyHiding}, func(c *lhws.Ctx) {
		var acc [32]int64
		lhws.For(c, 0, 32, 4, func(cc *lhws.Ctx, i int) {
			acc[i] = int64(i)
		})
		for _, v := range acc {
			sum += v
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if sum != 496 {
		t.Fatalf("sum = %d, want 496", sum)
	}
}

func TestPublicResilience(t *testing.T) {
	// Per-subtree deadline: the slow child times out with the typed
	// error, the rest of the run is unaffected.
	_, err := lhws.RunTasks(lhws.RuntimeConfig{Workers: 2}, func(c *lhws.Ctx) {
		cc, cancel := c.WithDeadline(10 * time.Millisecond)
		defer cancel()
		slow := lhws.SpawnValue(cc, func(c2 *lhws.Ctx) int {
			c2.Latency(10 * time.Second)
			return 1
		})
		if _, aerr := slow.AwaitErr(c); !errors.Is(aerr, lhws.ErrDeadline) {
			t.Errorf("AwaitErr = %v, want lhws.ErrDeadline", aerr)
		}
	})
	if err != nil {
		t.Fatalf("RunTasks: %v", err)
	}

	// Chaos: a dropped resume wakeup becomes a structured stall
	// diagnostic instead of a hang.
	inj := lhws.NewFaultInjector(42).Set(lhws.FaultResumeInject, lhws.FaultRule{
		Action: lhws.FaultDrop, Rate: 1.0,
	})
	st, err := lhws.RunTasks(lhws.RuntimeConfig{
		Workers:      2,
		StallTimeout: 100 * time.Millisecond,
		Faults:       inj,
	}, func(c *lhws.Ctx) {
		c.Latency(time.Millisecond)
	})
	var se *lhws.StallError
	if !errors.As(err, &se) || !errors.Is(err, lhws.ErrStalled) {
		t.Fatalf("RunTasks err = %v, want *lhws.StallError wrapping ErrStalled", err)
	}
	if !st.Stalled {
		t.Errorf("Stats.Stalled = false, want true")
	}

	// Chan close flows through the facade aliases.
	_, err = lhws.RunTasks(lhws.RuntimeConfig{Workers: 2}, func(c *lhws.Ctx) {
		ch := lhws.NewChan[int](0)
		ch.Send(c, 5)
		ch.Close()
		if v, ok := ch.RecvOK(c); !ok || v != 5 {
			t.Errorf("RecvOK = (%d, %v), want (5, true)", v, ok)
		}
		if _, ok := ch.RecvOK(c); ok {
			t.Errorf("RecvOK on drained closed chan reported ok")
		}
	})
	if err != nil {
		t.Fatalf("RunTasks: %v", err)
	}
}
